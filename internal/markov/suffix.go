package markov

import (
	"fmt"
	"math"
)

// SuffixChain is the paper's suffix-of-previous-and-current-states Markov
// chain C_F (Figure 2). Its 2Δ+1 vertices are the elements of Suffix-Set
// (Eq. 29):
//
//	HN^{≤Δ−1}H                         — index 0
//	HN^{≤Δ−1}HN^a, a ∈ {1, …, Δ−1}     — indices 1 … Δ−1
//	HN^{≥Δ}                            — index Δ
//	HN^{≥Δ}HN^b,  b ∈ {0, …, Δ−1}      — indices Δ+1 … 2Δ
//
// where H (probability α) is "some honest block mined this round" and N
// (probability ᾱ = 1−α) is "no honest block mined this round".
type SuffixChain struct {
	// Alpha is α, the per-round probability of the H state.
	Alpha float64
	// Delta is Δ, the maximum adversarial delay in rounds.
	Delta int
	chain *Chain
}

// Suffix-state index helpers. The exported methods make the encoding part
// of the API so the engine and consistency packages can track C_F states.

// StateShortH returns the index of HN^{≤Δ−1}H.
func (s *SuffixChain) StateShortH() int { return 0 }

// StateShortHN returns the index of HN^{≤Δ−1}HN^a for a ∈ {1, …, Δ−1}.
func (s *SuffixChain) StateShortHN(a int) (int, error) {
	if a < 1 || a > s.Delta-1 {
		return 0, fmt.Errorf("markov: a = %d outside {1, …, Δ−1 = %d}", a, s.Delta-1)
	}
	return a, nil
}

// StateLongN returns the index of HN^{≥Δ}.
func (s *SuffixChain) StateLongN() int { return s.Delta }

// StateLongHN returns the index of HN^{≥Δ}HN^b for b ∈ {0, …, Δ−1}.
func (s *SuffixChain) StateLongHN(b int) (int, error) {
	if b < 0 || b > s.Delta-1 {
		return 0, fmt.Errorf("markov: b = %d outside {0, …, Δ−1 = %d}", b, s.Delta-1)
	}
	return s.Delta + 1 + b, nil
}

// NewSuffixChain constructs C_F for the given α ∈ (0, 1) and Δ ≥ 1,
// implementing transition rules ①–④ of Section V-A.
func NewSuffixChain(alpha float64, delta int) (*SuffixChain, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("markov: α = %g outside (0, 1)", alpha)
	}
	if delta < 1 {
		return nil, fmt.Errorf("markov: Δ = %d must be ≥ 1", delta)
	}
	n := 2*delta + 1
	names := make([]string, n)
	names[0] = "HN≤Δ-1 H"
	for a := 1; a <= delta-1; a++ {
		names[a] = fmt.Sprintf("HN≤Δ-1 HN^%d", a)
	}
	names[delta] = "HN≥Δ"
	for b := 0; b <= delta-1; b++ {
		names[delta+1+b] = fmt.Sprintf("HN≥Δ HN^%d", b)
	}
	c, err := NewChain(n, names...)
	if err != nil {
		return nil, err
	}
	s := &SuffixChain{Alpha: alpha, Delta: delta, chain: c}
	abar := 1 - alpha
	set := func(i, j int, p float64) {
		if err := c.SetTransition(i, j, p); err != nil {
			panic(err) // indices are constructed in-range
		}
	}
	shortH := s.StateShortH()
	longN := s.StateLongN()

	// From HN^{≤Δ−1}H: H keeps us in HN^{≤Δ−1}H (rule ③); N starts a short
	// N-run (rule ①, a = 1) — unless Δ = 1, in which case a single N
	// already reaches HN^{≥Δ} (rule ④ via HN^{≤Δ−1}HN^{Δ−1} with the run
	// of allowed short a's empty).
	set(shortH, shortH, alpha)
	if delta == 1 {
		set(shortH, longN, abar)
	} else {
		set(shortH, 1, abar)
	}

	// From HN^{≤Δ−1}HN^a: H resets to HN^{≤Δ−1}H (rule ③); N either
	// extends the run (rule ①) or, at a = Δ−1, tips into HN^{≥Δ}
	// (rule ④).
	for a := 1; a <= delta-1; a++ {
		set(a, shortH, alpha)
		if a < delta-1 {
			set(a, a+1, abar)
		} else {
			set(a, longN, abar)
		}
	}

	// From HN^{≥Δ}: N stays (rule ④); H moves to HN^{≥Δ}HN^0 (rule ②,
	// b = 0, covering HN^{≥Δ}H).
	set(longN, longN, abar)
	b0, _ := s.StateLongHN(0)
	set(longN, b0, alpha)

	// From HN^{≥Δ}HN^b: H resets to HN^{≤Δ−1}H (rule ③); N either extends
	// (rule ②) or, at b = Δ−1, returns to HN^{≥Δ} (rule ④).
	for b := 0; b <= delta-1; b++ {
		i, _ := s.StateLongHN(b)
		set(i, shortH, alpha)
		if b < delta-1 {
			j, _ := s.StateLongHN(b + 1)
			set(i, j, abar)
		} else {
			set(i, longN, abar)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Chain exposes the underlying generic chain.
func (s *SuffixChain) Chain() *Chain { return s.chain }

// Len returns 2Δ+1, the number of vertices.
func (s *SuffixChain) Len() int { return s.chain.Len() }

// AnalyticStationary returns the closed-form stationary distribution of
// Eqs. (37a)–(37d):
//
//	π(HN^{≤Δ−1}H)     = α·(1 − ᾱ^Δ)          (37a)
//	π(HN^{≤Δ−1}HN^a)  = α·(1 − ᾱ^Δ)·ᾱ^a      (37b)
//	π(HN^{≥Δ})        = ᾱ^Δ                  (37c)
//	π(HN^{≥Δ}HN^b)    = α·ᾱ^{Δ+b}            (37d)
func (s *SuffixChain) AnalyticStationary() []float64 {
	alpha := s.Alpha
	abar := 1 - alpha
	abarD := math.Pow(abar, float64(s.Delta))
	pi := make([]float64, s.Len())
	pi[s.StateShortH()] = alpha * (1 - abarD)
	for a := 1; a <= s.Delta-1; a++ {
		pi[a] = alpha * (1 - abarD) * math.Pow(abar, float64(a))
	}
	pi[s.StateLongN()] = abarD
	for b := 0; b <= s.Delta-1; b++ {
		i, _ := s.StateLongHN(b)
		pi[i] = alpha * abarD * math.Pow(abar, float64(b))
	}
	return pi
}

// MinStationary returns min π_F = α·ᾱ^{Δ−1}·min{1−ᾱ^Δ, ᾱ^Δ} from the proof
// of Proposition 1 (Eq. 99).
func (s *SuffixChain) MinStationary() float64 {
	alpha := s.Alpha
	abar := 1 - alpha
	abarD := math.Pow(abar, float64(s.Delta))
	return alpha * math.Pow(abar, float64(s.Delta-1)) * math.Min(1-abarD, abarD)
}

// SuffixTracker incrementally tracks the C_F vertex visited as a stream of
// per-round H/N states arrives, implementing the suffix(·) map of
// Section V-A without storing history. Feed it with Observe; the tracker
// becomes Valid after two H states have been seen (the paper's
// "after at least two H have happened" proviso).
type SuffixTracker struct {
	delta int
	// nRun is the number of consecutive N states since the last H.
	nRun int
	// prevGapLong records whether the N-run preceding the last H was ≥ Δ.
	prevGapLong bool
	hSeen       int
}

// NewSuffixTracker returns a tracker for suffix states with delay delta.
func NewSuffixTracker(delta int) (*SuffixTracker, error) {
	if delta < 1 {
		return nil, fmt.Errorf("markov: Δ = %d must be ≥ 1", delta)
	}
	return &SuffixTracker{delta: delta}, nil
}

// Observe consumes the next round state (true = H, false = N).
func (t *SuffixTracker) Observe(h bool) {
	if h {
		if t.hSeen > 0 {
			// The completed N-run between the previous H and this one
			// determines which branch of Suffix-Set we are on.
			t.prevGapLong = t.nRun >= t.delta
		}
		t.hSeen++
		t.nRun = 0
		return
	}
	t.nRun++
}

// Valid reports whether at least two H states have been observed, which is
// when the suffix state is well defined.
func (t *SuffixTracker) Valid() bool { return t.hSeen >= 2 }

// HSeen returns the number of H states observed so far.
func (t *SuffixTracker) HSeen() int { return t.hSeen }

// NRun returns the length of the current trailing run of N states.
func (t *SuffixTracker) NRun() int { return t.nRun }

// InLongN reports whether the tracked suffix is HN^{≥Δ}: at least one H
// observed and the trailing N-run has reached Δ. Unlike State, it is
// meaningful as soon as one H has been seen.
func (t *SuffixTracker) InLongN() bool { return t.hSeen >= 1 && t.nRun >= t.delta }

// State returns the current C_F vertex index under the indexing of
// SuffixChain. It panics if !Valid().
func (t *SuffixTracker) State(s *SuffixChain) int {
	if !t.Valid() {
		panic("markov: SuffixTracker.State before two H observations")
	}
	if t.nRun >= t.delta {
		return s.StateLongN()
	}
	if t.prevGapLong {
		i, err := s.StateLongHN(t.nRun)
		if err != nil {
			panic(err)
		}
		return i
	}
	if t.nRun == 0 {
		return s.StateShortH()
	}
	i, err := s.StateShortHN(t.nRun)
	if err != nil {
		panic(err)
	}
	return i
}
