package markov

import (
	"fmt"
	"math"

	"neatbound/internal/rng"
)

// This file implements the concentration machinery of Section V-B: the
// Chernoff–Hoeffding bound for Markov chains (Chung, Lam, Liu &
// Mitzenmacher, Theorem 3.1) that the paper instantiates as
// Inequality (47):
//
//	P[C ≤ (1−δ)·E[C]] ≤ c·‖φ‖_π · exp(−δ²·T·π_conv / (72·τ(ε)))
//
// where C counts visits to a target vertex over a T-step walk, π_conv is
// the vertex's stationary mass, τ(ε) is the ε-mixing time (ε ≤ 1/8), and
// ‖φ‖_π is the π-norm of the initial distribution (bounded by
// Proposition 1 as 1/√min π).

// ConcentrationBound evaluates the Inequality-(47) right-hand side for a
// walk of length steps on chain c targeting the stationary mass piTarget.
type ConcentrationBound struct {
	// MixingTime is τ(1/8), the chain's 1/8-mixing time.
	MixingTime int
	// PiNormBound bounds ‖φ‖_π (Proposition 1: 1/√min π).
	PiNormBound float64
	// PiTarget is the stationary probability of the counted vertex.
	PiTarget float64
	// LeadConstant is the universal constant in front (Theorem 3.1 of
	// Chung et al. has an unspecified constant; the paper carries it as
	// O(1); we use 1 so the bound is comparable across parameters).
	LeadConstant float64
}

// NewConcentrationBound computes the bound ingredients for the chain: its
// 1/8-mixing time, the Proposition-1 π-norm bound, and the target mass.
func NewConcentrationBound(c *Chain, target int, maxMixSteps int) (*ConcentrationBound, error) {
	if target < 0 || target >= c.Len() {
		return nil, fmt.Errorf("markov: target state %d outside [0, %d)", target, c.Len())
	}
	pi, err := c.StationaryDirect()
	if err != nil {
		return nil, err
	}
	tau, err := c.MixingTime(0.125, maxMixSteps)
	if err != nil {
		return nil, err
	}
	return &ConcentrationBound{
		MixingTime:   tau,
		PiNormBound:  PiNormUpperBound(pi),
		PiTarget:     pi[target],
		LeadConstant: 1,
	}, nil
}

// LowerTail returns the Inequality-(47) upper bound on
// P[C ≤ (1−δ)·T·π_target] for a T-step stationary-start walk.
func (b *ConcentrationBound) LowerTail(steps int, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	if delta > 1 {
		delta = 1
	}
	exponent := -delta * delta * float64(steps) * b.PiTarget / (72 * float64(b.MixingTime))
	v := b.LeadConstant * b.PiNormBound * math.Exp(exponent)
	return math.Min(v, 1)
}

// UpperTail returns the matching bound on P[C ≥ (1+δ)·T·π_target] (same
// exponent shape in Chung et al.'s Theorem 3.1).
func (b *ConcentrationBound) UpperTail(steps int, delta float64) float64 {
	if delta <= 0 {
		return 1
	}
	exponent := -delta * delta * float64(steps) * b.PiTarget / (72 * float64(b.MixingTime))
	v := b.LeadConstant * b.PiNormBound * math.Exp(exponent)
	return math.Min(v, 1)
}

// MinStepsForConfidence returns the smallest T such that the lower-tail
// bound at deviation delta falls below failProb — how long a window must
// be for the paper's concentration argument to bite.
func (b *ConcentrationBound) MinStepsForConfidence(delta, failProb float64) (int, error) {
	if delta <= 0 || delta > 1 {
		return 0, fmt.Errorf("markov: δ = %g outside (0, 1]", delta)
	}
	if failProb <= 0 || failProb >= 1 {
		return 0, fmt.Errorf("markov: failure probability %g outside (0, 1)", failProb)
	}
	if b.PiTarget <= 0 {
		return 0, fmt.Errorf("markov: target has zero stationary mass")
	}
	// Solve lead·‖φ‖_π·exp(−δ²Tπ/(72τ)) = failProb for T.
	t := 72 * float64(b.MixingTime) / (delta * delta * b.PiTarget) *
		math.Log(b.LeadConstant*b.PiNormBound/failProb)
	if t < 1 {
		t = 1
	}
	return int(math.Ceil(t)), nil
}

// EmpiricalVisitDeviation runs trials independent walks of the given
// length from start and returns the observed fraction of walks whose
// visit count of target fell at or below (1−delta)·steps·π_target — the
// quantity Inequality (47) upper-bounds.
func EmpiricalVisitDeviation(c *Chain, target, start, steps, trials int, delta float64, r *rng.Stream) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("markov: trials = %d must be ≥ 1", trials)
	}
	pi, err := c.StationaryDirect()
	if err != nil {
		return 0, err
	}
	threshold := (1 - delta) * float64(steps) * pi[target]
	bad := 0
	for i := 0; i < trials; i++ {
		path, err := c.Walk(r, start, steps)
		if err != nil {
			return 0, err
		}
		count := 0
		for _, s := range path[1:] {
			if s == target {
				count++
			}
		}
		if float64(count) <= threshold {
			bad++
		}
	}
	return float64(bad) / float64(trials), nil
}
