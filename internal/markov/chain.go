// Package markov implements the Markov-chain machinery behind the paper's
// Theorem 1: a generic finite-chain engine (construction, validation,
// stationary distributions, ergodicity checks, mixing time, random walks)
// plus the two chains the paper introduces —
//
//   - the suffix-of-previous-and-current-states chain C_F of Figure 2,
//     with its analytic stationary distribution Eqs. (37a)–(37d), and
//   - the concatenated chain C_{F‖P} whose stationary probability of the
//     convergence-opportunity vertex HN^{≥Δ}‖H₁N^{Δ} is ᾱ^{2Δ}·α₁
//     (Eq. 44), validated here by materializing the product chain for
//     small Δ and checking the product-form identity Eq. (40).
package markov

import (
	"errors"
	"fmt"
	"math"

	"neatbound/internal/rng"
)

// ErrNotStochastic is returned when a transition row does not sum to 1.
var ErrNotStochastic = errors.New("markov: transition matrix is not row-stochastic")

// ErrNotIrreducible is returned by methods that require an irreducible
// chain.
var ErrNotIrreducible = errors.New("markov: chain is not irreducible")

// Chain is a finite, discrete-time Markov chain with a dense transition
// matrix. Build one with NewChain and SetTransition, then Validate.
type Chain struct {
	names []string
	p     [][]float64
}

// NewChain creates a chain with n states whose transition probabilities are
// all zero. Optional names label the states (len(names) must be 0 or n).
func NewChain(n int, names ...string) (*Chain, error) {
	if n <= 0 {
		return nil, fmt.Errorf("markov: chain needs at least 1 state, got %d", n)
	}
	if len(names) != 0 && len(names) != n {
		return nil, fmt.Errorf("markov: got %d names for %d states", len(names), n)
	}
	c := &Chain{p: make([][]float64, n)}
	for i := range c.p {
		c.p[i] = make([]float64, n)
	}
	if len(names) == n {
		c.names = append([]string(nil), names...)
	} else {
		c.names = make([]string, n)
		for i := range c.names {
			c.names[i] = fmt.Sprintf("s%d", i)
		}
	}
	return c, nil
}

// Len returns the number of states.
func (c *Chain) Len() int { return len(c.p) }

// Name returns the label of state i.
func (c *Chain) Name(i int) string { return c.names[i] }

// Index returns the index of the state named name, or -1.
func (c *Chain) Index(name string) int {
	for i, n := range c.names {
		if n == name {
			return i
		}
	}
	return -1
}

// SetTransition sets P[i→j] = prob.
func (c *Chain) SetTransition(i, j int, prob float64) error {
	if i < 0 || i >= len(c.p) || j < 0 || j >= len(c.p) {
		return fmt.Errorf("markov: transition (%d,%d) out of range [0,%d)", i, j, len(c.p))
	}
	if prob < 0 || prob > 1 || math.IsNaN(prob) {
		return fmt.Errorf("markov: transition probability %g outside [0,1]", prob)
	}
	c.p[i][j] = prob
	return nil
}

// Prob returns P[i→j].
func (c *Chain) Prob(i, j int) float64 { return c.p[i][j] }

// Validate checks that every row sums to 1 within tolerance.
func (c *Chain) Validate() error {
	for i, row := range c.p {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("%w: row %d (%s) sums to %.12g", ErrNotStochastic, i, c.names[i], sum)
		}
	}
	return nil
}

// successors returns the states reachable from i in one step with positive
// probability.
func (c *Chain) successors(i int) []int {
	var out []int
	for j, v := range c.p[i] {
		if v > 0 {
			out = append(out, j)
		}
	}
	return out
}

// IsIrreducible reports whether every state can reach every other state.
func (c *Chain) IsIrreducible() bool {
	n := len(c.p)
	reach := func(start int, edge func(u, v int) bool) int {
		seen := make([]bool, n)
		seen[start] = true
		queue := []int{start}
		count := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for v := 0; v < n; v++ {
				if !seen[v] && edge(u, v) {
					seen[v] = true
					count++
					queue = append(queue, v)
				}
			}
		}
		return count
	}
	fwd := reach(0, func(u, v int) bool { return c.p[u][v] > 0 })
	bwd := reach(0, func(u, v int) bool { return c.p[v][u] > 0 })
	return fwd == n && bwd == n
}

// Period returns the period of the chain, assuming irreducibility (all
// states of an irreducible chain share one period). A period of 1 means
// aperiodic. It returns an error when the chain is not irreducible.
func (c *Chain) Period() (int, error) {
	if !c.IsIrreducible() {
		return 0, ErrNotIrreducible
	}
	// BFS levels from state 0; the period is the gcd of
	// level(u) + 1 − level(v) over all edges u→v.
	n := len(c.p)
	level := make([]int, n)
	for i := range level {
		level[i] = -1
	}
	level[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range c.successors(u) {
			if level[v] < 0 {
				level[v] = level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	g := 0
	for u := 0; u < n; u++ {
		for _, v := range c.successors(u) {
			d := level[u] + 1 - level[v]
			if d < 0 {
				d = -d
			}
			g = gcd(g, d)
		}
	}
	if g == 0 {
		g = 1
	}
	return g, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// IsErgodic reports whether the chain is irreducible and aperiodic — the
// properties the paper asserts for C_F and C_{F‖P} (Section V-A).
func (c *Chain) IsErgodic() bool {
	p, err := c.Period()
	return err == nil && p == 1
}

// Step returns the distribution after one step: out = in · P.
func (c *Chain) Step(in []float64) []float64 {
	n := len(c.p)
	out := make([]float64, n)
	for i, pi := range in {
		if pi == 0 {
			continue
		}
		row := c.p[i]
		for j, pij := range row {
			if pij > 0 {
				out[j] += pi * pij
			}
		}
	}
	return out
}

// StationaryPower computes the stationary distribution by power iteration
// from the uniform distribution, stopping when successive iterates are
// within tol in total variation, or after maxIter steps.
func (c *Chain) StationaryPower(tol float64, maxIter int) ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if tol <= 0 {
		tol = 1e-13
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	n := len(c.p)
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = 1 / float64(n)
	}
	for it := 0; it < maxIter; it++ {
		next := c.Step(cur)
		if TotalVariation(cur, next) < tol {
			return next, nil
		}
		cur = next
	}
	return nil, fmt.Errorf("markov: power iteration did not converge in %d steps", maxIter)
}

// StationaryDirect computes the stationary distribution by solving the
// linear system π(P − I) = 0 together with Σπ = 1 via Gaussian elimination
// with partial pivoting. It is exact up to float rounding and independent
// of mixing speed; BenchmarkStationaryMethods compares it with power
// iteration.
func (c *Chain) StationaryDirect() ([]float64, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := len(c.p)
	// Build Aᵀ x = b where rows are (P − I) columns, and the last equation
	// is replaced by the normalization Σπ = 1.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = c.p[j][i] // transpose
			if i == j {
				a[i][j] -= 1
			}
		}
	}
	for j := 0; j < n; j++ {
		a[n-1][j] = 1
	}
	b[n-1] = 1
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-300 {
			return nil, fmt.Errorf("markov: singular system at column %d (chain may be reducible)", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for k := col; k < n; k++ {
				a[r][k] -= f * a[col][k]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= a[i][k] * x[k]
		}
		x[i] = s / a[i][i]
	}
	// Clean tiny negatives from rounding and renormalize.
	sum := 0.0
	for i := range x {
		if x[i] < 0 && x[i] > -1e-12 {
			x[i] = 0
		}
		sum += x[i]
	}
	if math.Abs(sum-1) > 1e-6 {
		return nil, fmt.Errorf("markov: direct solve produced mass %g", sum)
	}
	for i := range x {
		x[i] /= sum
	}
	return x, nil
}

// TotalVariation returns ½ Σ|p_i − q_i|, the total-variation distance
// between two distributions on the same state space.
func TotalVariation(p, q []float64) float64 {
	s := 0.0
	for i := range p {
		s += math.Abs(p[i] - q[i])
	}
	return s / 2
}

// MixingTime returns the smallest t such that from every deterministic
// start the distribution after t steps is within eps of stationary in
// total variation — the quantity τ(ε, ᾱ, Δ) in Inequality (47). It scans up
// to maxSteps and errors out if mixing is slower.
func (c *Chain) MixingTime(eps float64, maxSteps int) (int, error) {
	pi, err := c.StationaryDirect()
	if err != nil {
		return 0, err
	}
	n := len(c.p)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][i] = 1
	}
	for t := 1; t <= maxSteps; t++ {
		worst := 0.0
		for i := range rows {
			rows[i] = c.Step(rows[i])
			if tv := TotalVariation(rows[i], pi); tv > worst {
				worst = tv
			}
		}
		if worst <= eps {
			return t, nil
		}
	}
	return 0, fmt.Errorf("markov: TV distance still above %g after %d steps", eps, maxSteps)
}

// Walk simulates steps transitions starting from state start and returns
// the visited states (length steps+1 including the start).
func (c *Chain) Walk(r *rng.Stream, start, steps int) ([]int, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if start < 0 || start >= len(c.p) {
		return nil, fmt.Errorf("markov: start state %d out of range", start)
	}
	path := make([]int, steps+1)
	path[0] = start
	cur := start
	for s := 1; s <= steps; s++ {
		u := r.Float64()
		cum := 0.0
		next := len(c.p) - 1
		for j, pj := range c.p[cur] {
			cum += pj
			if u < cum {
				next = j
				break
			}
		}
		cur = next
		path[s] = cur
	}
	return path, nil
}

// VisitFrequencies simulates a walk of length steps and returns the
// empirical fraction of time spent in each state (excluding the start).
func (c *Chain) VisitFrequencies(r *rng.Stream, start, steps int) ([]float64, error) {
	path, err := c.Walk(r, start, steps)
	if err != nil {
		return nil, err
	}
	freq := make([]float64, len(c.p))
	for _, s := range path[1:] {
		freq[s]++
	}
	for i := range freq {
		freq[i] /= float64(steps)
	}
	return freq, nil
}

// PiNorm returns ‖φ‖_π = sqrt(Σ φ_i²/π_i), the norm appearing in
// Inequality (47) of the paper (Chernoff–Hoeffding bounds for Markov
// chains). Entries where π_i = 0 and φ_i > 0 yield +Inf.
func PiNorm(phi, pi []float64) float64 {
	s := 0.0
	for i := range phi {
		if phi[i] == 0 {
			continue
		}
		if pi[i] == 0 {
			return math.Inf(1)
		}
		s += phi[i] * phi[i] / pi[i]
	}
	return math.Sqrt(s)
}

// PiNormUpperBound returns 1/√(min π), the Proposition-1 bound on ‖φ‖_π
// valid for any initial distribution φ.
func PiNormUpperBound(pi []float64) float64 {
	minPi := math.Inf(1)
	for _, v := range pi {
		if v < minPi {
			minPi = v
		}
	}
	if minPi <= 0 {
		return math.Inf(1)
	}
	return 1 / math.Sqrt(minPi)
}
