package markov

import (
	"math"
	"testing"
	"testing/quick"

	"neatbound/internal/rng"
)

func TestNewSuffixChainValidation(t *testing.T) {
	if _, err := NewSuffixChain(0, 3); err == nil {
		t.Error("α=0 accepted")
	}
	if _, err := NewSuffixChain(1, 3); err == nil {
		t.Error("α=1 accepted")
	}
	if _, err := NewSuffixChain(0.5, 0); err == nil {
		t.Error("Δ=0 accepted")
	}
}

func TestSuffixChainSize(t *testing.T) {
	for _, delta := range []int{1, 2, 3, 8, 32} {
		s, err := NewSuffixChain(0.3, delta)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := s.Len(), 2*delta+1; got != want {
			t.Errorf("Δ=%d: %d states, want %d (Suffix-Set of Eq. 29)", delta, got, want)
		}
	}
}

func TestSuffixChainStochastic(t *testing.T) {
	for _, delta := range []int{1, 2, 5, 17} {
		s, err := NewSuffixChain(0.2, delta)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Chain().Validate(); err != nil {
			t.Errorf("Δ=%d: %v", delta, err)
		}
	}
}

func TestSuffixChainErgodic(t *testing.T) {
	// The paper asserts C_F is time-homogeneous, irreducible and ergodic.
	for _, delta := range []int{1, 2, 4, 9} {
		s, err := NewSuffixChain(0.35, delta)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Chain().IsIrreducible() {
			t.Errorf("Δ=%d: C_F not irreducible", delta)
		}
		if !s.Chain().IsErgodic() {
			t.Errorf("Δ=%d: C_F not ergodic", delta)
		}
	}
}

func TestAnalyticStationarySumsToOne(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.1, 0.5, 0.9} {
		for _, delta := range []int{1, 2, 3, 10, 40} {
			s, err := NewSuffixChain(alpha, delta)
			if err != nil {
				t.Fatal(err)
			}
			pi := s.AnalyticStationary()
			sum := 0.0
			for _, v := range pi {
				sum += v
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("α=%g Δ=%d: analytic stationary sums to %.15g", alpha, delta, sum)
			}
		}
	}
}

// TestAnalyticMatchesDirect is the numerical validation of Eqs. (37a)–(37d):
// the closed-form stationary distribution solves πP = π.
func TestAnalyticMatchesDirect(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.3, 0.7} {
		for _, delta := range []int{1, 2, 3, 7, 20} {
			s, err := NewSuffixChain(alpha, delta)
			if err != nil {
				t.Fatal(err)
			}
			analytic := s.AnalyticStationary()
			direct, err := s.Chain().StationaryDirect()
			if err != nil {
				t.Fatal(err)
			}
			if tv := TotalVariation(analytic, direct); tv > 1e-10 {
				t.Errorf("α=%g Δ=%d: TV(analytic, direct) = %g", alpha, delta, tv)
			}
		}
	}
}

func TestAnalyticIsFixedPoint(t *testing.T) {
	s, err := NewSuffixChain(0.12, 6)
	if err != nil {
		t.Fatal(err)
	}
	pi := s.AnalyticStationary()
	if tv := TotalVariation(pi, s.Chain().Step(pi)); tv > 1e-14 {
		t.Errorf("analytic πP ≠ π: TV = %g", tv)
	}
}

func TestQuickAnalyticStationary(t *testing.T) {
	f := func(aRaw uint16, dRaw uint8) bool {
		alpha := 0.01 + 0.98*float64(aRaw)/65535
		delta := int(dRaw%12) + 1
		s, err := NewSuffixChain(alpha, delta)
		if err != nil {
			return false
		}
		pi := s.AnalyticStationary()
		sum := 0.0
		for _, v := range pi {
			if v < 0 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		return TotalVariation(pi, s.Chain().Step(pi)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStationaryEquation36(t *testing.T) {
	// Spot-check the balance equations (36a)–(36d) directly.
	alpha, delta := 0.25, 4
	s, err := NewSuffixChain(alpha, delta)
	if err != nil {
		t.Fatal(err)
	}
	abar := 1 - alpha
	pi := s.AnalyticStationary()
	// (36a): π(shortHN^a) = π(shortH)·ᾱ^a.
	for a := 1; a <= delta-1; a++ {
		i, _ := s.StateShortHN(a)
		want := pi[s.StateShortH()] * math.Pow(abar, float64(a))
		if math.Abs(pi[i]-want) > 1e-14 {
			t.Errorf("(36a) a=%d: %g vs %g", a, pi[i], want)
		}
	}
	// (36b): π(longHN^b) = π(longN)·α·ᾱ^b.
	for b := 0; b <= delta-1; b++ {
		i, _ := s.StateLongHN(b)
		want := pi[s.StateLongN()] * alpha * math.Pow(abar, float64(b))
		if math.Abs(pi[i]-want) > 1e-14 {
			t.Errorf("(36b) b=%d: %g vs %g", b, pi[i], want)
		}
	}
}

func TestMinStationaryMatchesVectorMin(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.3, 0.6} {
		for _, delta := range []int{1, 2, 5, 11} {
			s, err := NewSuffixChain(alpha, delta)
			if err != nil {
				t.Fatal(err)
			}
			pi := s.AnalyticStationary()
			minPi := math.Inf(1)
			for _, v := range pi {
				if v < minPi {
					minPi = v
				}
			}
			if got := s.MinStationary(); math.Abs(got-minPi)/minPi > 1e-10 {
				t.Errorf("α=%g Δ=%d: MinStationary = %g, vector min = %g", alpha, delta, got, minPi)
			}
		}
	}
}

func TestStateIndexHelpers(t *testing.T) {
	s, err := NewSuffixChain(0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.StateShortH() != 0 {
		t.Error("shortH index")
	}
	if s.StateLongN() != 5 {
		t.Error("longN index")
	}
	if i, err := s.StateShortHN(2); err != nil || i != 2 {
		t.Errorf("shortHN(2) = %d, %v", i, err)
	}
	if _, err := s.StateShortHN(0); err == nil {
		t.Error("shortHN(0) accepted")
	}
	if _, err := s.StateShortHN(5); err == nil {
		t.Error("shortHN(Δ) accepted")
	}
	if i, err := s.StateLongHN(0); err != nil || i != 6 {
		t.Errorf("longHN(0) = %d, %v", i, err)
	}
	if i, err := s.StateLongHN(4); err != nil || i != 10 {
		t.Errorf("longHN(4) = %d, %v", i, err)
	}
	if _, err := s.StateLongHN(5); err == nil {
		t.Error("longHN(Δ) accepted")
	}
}

func TestEmpiricalWalkMatchesStationary(t *testing.T) {
	s, err := NewSuffixChain(0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	freq, err := s.Chain().VisitFrequencies(rng.New(7), 0, 500000)
	if err != nil {
		t.Fatal(err)
	}
	pi := s.AnalyticStationary()
	if tv := TotalVariation(freq, pi); tv > 0.01 {
		t.Errorf("empirical vs analytic TV = %g", tv)
	}
}

// TestTrackerPaperExample replays the paper's Δ=3 worked example: states
// H,N,H,H,N,N,H,N,N,N for rounds 1–10 give F₇ = HN^{≤Δ−1}H,
// F₈ = HN^{≤Δ−1}HN¹, F₉ = HN^{≤Δ−1}HN², F₁₀ = HN^{≥Δ}.
func TestTrackerPaperExample(t *testing.T) {
	s, err := NewSuffixChain(0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewSuffixTracker(3)
	if err != nil {
		t.Fatal(err)
	}
	seq := []bool{true, false, true, true, false, false, true, false, false, false}
	var got []int
	for i, h := range seq {
		tr.Observe(h)
		if i >= 6 { // rounds 7–10
			got = append(got, tr.State(s))
		}
	}
	sh1, _ := s.StateShortHN(1)
	sh2, _ := s.StateShortHN(2)
	want := []int{s.StateShortH(), sh1, sh2, s.StateLongN()}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("F_%d = %s, want %s", i+7, s.Chain().Name(got[i]), s.Chain().Name(want[i]))
		}
	}
}

func TestTrackerLongGapBranch(t *testing.T) {
	// After an N-run ≥ Δ followed by H, the tracker must be on the
	// HN^{≥Δ}HN^b branch.
	s, _ := NewSuffixChain(0.5, 2)
	tr, _ := NewSuffixTracker(2)
	for _, h := range []bool{true, false, false, false, true} {
		tr.Observe(h)
	}
	b0, _ := s.StateLongHN(0)
	if got := tr.State(s); got != b0 {
		t.Errorf("state = %s, want %s", s.Chain().Name(got), s.Chain().Name(b0))
	}
	tr.Observe(false)
	b1, _ := s.StateLongHN(1)
	if got := tr.State(s); got != b1 {
		t.Errorf("state = %s, want %s", s.Chain().Name(got), s.Chain().Name(b1))
	}
	tr.Observe(false) // run reaches Δ ⇒ HN^{≥Δ}
	if got := tr.State(s); got != s.StateLongN() {
		t.Errorf("state = %s, want %s", s.Chain().Name(got), s.Chain().Name(s.StateLongN()))
	}
}

func TestTrackerInvalidBeforeTwoH(t *testing.T) {
	tr, _ := NewSuffixTracker(3)
	if tr.Valid() {
		t.Error("valid before any H")
	}
	tr.Observe(true)
	if tr.Valid() {
		t.Error("valid after one H")
	}
	tr.Observe(false)
	tr.Observe(true)
	if !tr.Valid() {
		t.Error("not valid after two H")
	}
}

func TestTrackerPanicsWhenInvalid(t *testing.T) {
	s, _ := NewSuffixChain(0.5, 3)
	tr, _ := NewSuffixTracker(3)
	defer func() {
		if recover() == nil {
			t.Fatal("State before validity did not panic")
		}
	}()
	tr.State(s)
}

func TestNewSuffixTrackerValidation(t *testing.T) {
	if _, err := NewSuffixTracker(0); err == nil {
		t.Error("Δ=0 accepted")
	}
}

// TestTrackerAgreesWithNext cross-checks the incremental tracker against
// the deterministic Next transition map on a long random H/N sequence.
func TestTrackerAgreesWithNext(t *testing.T) {
	for _, delta := range []int{1, 2, 3, 6} {
		s, err := NewSuffixChain(0.4, delta)
		if err != nil {
			t.Fatal(err)
		}
		tr, _ := NewSuffixTracker(delta)
		r := rng.New(uint64(100 + delta))
		chainState := -1
		for i := 0; i < 20000; i++ {
			h := r.Bernoulli(0.4)
			tr.Observe(h)
			if chainState >= 0 {
				chainState = s.Next(chainState, h)
				if got := tr.State(s); got != chainState {
					t.Fatalf("Δ=%d step %d: tracker %s, chain %s", delta, i,
						s.Chain().Name(got), s.Chain().Name(chainState))
				}
			} else if tr.Valid() {
				chainState = tr.State(s) // synchronize once valid
			}
		}
	}
}

// TestNextMatchesTransitionMatrix verifies the deterministic Next map is
// exactly the support of the stochastic transition matrix.
func TestNextMatchesTransitionMatrix(t *testing.T) {
	for _, delta := range []int{1, 2, 5} {
		alpha := 0.3
		s, err := NewSuffixChain(alpha, delta)
		if err != nil {
			t.Fatal(err)
		}
		c := s.Chain()
		for i := 0; i < s.Len(); i++ {
			hNext := s.Next(i, true)
			nNext := s.Next(i, false)
			if got := c.Prob(i, hNext); math.Abs(got-alpha) > 1e-15 {
				t.Errorf("Δ=%d state %d: P[→H-next] = %g, want α", delta, i, got)
			}
			if got := c.Prob(i, nNext); math.Abs(got-(1-alpha)) > 1e-15 {
				t.Errorf("Δ=%d state %d: P[→N-next] = %g, want ᾱ", delta, i, got)
			}
		}
	}
}

func BenchmarkSuffixChainBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewSuffixChain(0.2, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuffixTracker(b *testing.B) {
	s, _ := NewSuffixChain(0.3, 8)
	tr, _ := NewSuffixTracker(8)
	r := rng.New(1)
	tr.Observe(true)
	tr.Observe(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Observe(r.Bernoulli(0.3))
		_ = tr.State(s)
	}
}
