package markov

import (
	"fmt"
	"math"
)

// This file estimates the spectral gap of a finite chain and relates it
// to the mixing time τ(ε) used in Inequality (47). For an ergodic chain
// with second-largest eigenvalue modulus λ₂, the standard bounds give
//
//	τ(ε) ≤ log(1/(ε·min π)) / (1−λ₂)      (upper bound)
//	τ(ε) ≥ (λ₂/(1−λ₂))·log(1/(2ε))        (lower bound)
//
// so the gap 1−λ₂ is the chain's intrinsic convergence rate. The gap is
// estimated by power iteration on the transition operator restricted to
// the space orthogonal (in the π-weighted sense) to the stationary
// vector.

// SpectralGap estimates 1−λ₂, where λ₂ is the second-largest eigenvalue
// modulus of the chain. It runs deflated power iteration for at most
// maxIter steps with the given tolerance on successive eigenvalue
// estimates.
func (c *Chain) SpectralGap(tol float64, maxIter int) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	pi, err := c.StationaryDirect()
	if err != nil {
		return 0, err
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	n := len(c.p)
	if n == 1 {
		return 1, nil // trivial chain mixes instantly
	}
	// Start from a deterministic non-uniform vector, deflate the
	// stationary component (right eigenvector of Pᵀ is π; left eigenvector
	// of P for eigenvalue 1 is the all-ones vector — we iterate row
	// vectors x ↦ xP and remove the π component).
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i + 1)) // arbitrary, reproducible, non-degenerate
	}
	deflate := func(v []float64) {
		// Remove the component along π: subtract (Σv)·π so Σv = 0.
		sum := 0.0
		for _, t := range v {
			sum += t
		}
		for i := range v {
			v[i] -= sum * pi[i]
		}
	}
	norm := func(v []float64) float64 {
		s := 0.0
		for _, t := range v {
			s += t * t
		}
		return math.Sqrt(s)
	}
	deflate(x)
	if norm(x) == 0 {
		return 0, fmt.Errorf("markov: degenerate start vector")
	}
	prev := 0.0
	lambda := 0.0
	for it := 0; it < maxIter; it++ {
		nx := norm(x)
		if nx < 1e-280 {
			// x is collapsing: λ₂ is effectively 0 (instant mixing on the
			// orthogonal complement).
			return 1, nil
		}
		for i := range x {
			x[i] /= nx
		}
		y := c.Step(x)
		deflate(y)
		lambda = norm(y) // ‖xP‖/‖x‖ with ‖x‖=1 estimates |λ₂|
		x = y
		if it > 10 && math.Abs(lambda-prev) < tol {
			break
		}
		prev = lambda
	}
	if lambda > 1 {
		lambda = 1
	}
	return 1 - lambda, nil
}

// MixingTimeUpperBoundFromGap returns the spectral upper bound
// log(1/(ε·min π)) / gap on τ(ε).
func MixingTimeUpperBoundFromGap(gap, eps, minPi float64) (float64, error) {
	if gap <= 0 || gap > 1 {
		return 0, fmt.Errorf("markov: gap %g outside (0, 1]", gap)
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("markov: ε %g outside (0, 1)", eps)
	}
	if minPi <= 0 || minPi > 1 {
		return 0, fmt.Errorf("markov: min π %g outside (0, 1]", minPi)
	}
	return math.Log(1/(eps*minPi)) / gap, nil
}

// RelaxationTime returns 1/gap, the chain's relaxation time.
func RelaxationTime(gap float64) (float64, error) {
	if gap <= 0 || gap > 1 {
		return 0, fmt.Errorf("markov: gap %g outside (0, 1]", gap)
	}
	return 1 / gap, nil
}
