package neatbound

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"neatbound/internal/adversary"
	"neatbound/internal/consistency"
	"neatbound/internal/engine"
	"neatbound/internal/params"
)

// These tests pin the fast-forward equivalence contract beyond the
// golden hashes: the exact artifacts downstream consumers read — the
// JSONL round trace, the Lemma-1 ledger accounting, the full
// RoundRecord stream, adversary diagnostics — must be byte- and
// value-identical between the step engine and the event-driven engine.

// runArtifacts executes one case and returns the raw JSONL trace, the
// ledger accounting, and the engine result.
func runArtifacts(t *testing.T, gc goldenCase, fastForward bool, shards int) ([]byte, consistency.Accounting, *engine.Result) {
	t.Helper()
	cfg := gc.cfg
	cfg.FastForward = fastForward
	cfg.Shards = shards
	var buf bytes.Buffer
	ledger, err := consistency.NewLedgerRecorder(cfg.Params.Delta)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observer = engine.Observers(engine.NewTraceWriter(&buf), ledger)
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gc.oracle {
		if err := e.WithOracleMining(gc.oracleKey); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ledger.Accounting(), res
}

// TestFastForwardArtifactsIdentical: on every golden configuration the
// fast-forward engine must produce a byte-identical JSONL round trace
// (TraceWriter) and an identical Lemma-1 ledger (LedgerRecorder) to the
// step engine — skipped rounds still emit their records, so external
// consumers of the trace interchange cannot tell the engines apart.
func TestFastForwardArtifactsIdentical(t *testing.T) {
	for name := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			// Strategies are stateful: each run needs its own instance,
			// so the case is rebuilt per engine.
			stepTrace, stepLedger, stepRes := runArtifacts(t, goldenCases(t)[name], false, 0)
			skipTrace, skipLedger, skipRes := runArtifacts(t, goldenCases(t)[name], true, 0)
			if !bytes.Equal(stepTrace, skipTrace) {
				t.Errorf("JSONL traces differ (step %d bytes, skip %d bytes)", len(stepTrace), len(skipTrace))
			}
			if stepLedger != skipLedger {
				t.Errorf("ledger accounting differs: step %+v, skip %+v", stepLedger, skipLedger)
			}
			if !reflect.DeepEqual(stepRes.FinalTips, skipRes.FinalTips) {
				t.Error("final tips differ")
			}
			if stepRes.HonestBlocks != skipRes.HonestBlocks || stepRes.AdversaryBlocks != skipRes.AdversaryBlocks {
				t.Errorf("block counters differ: step (%d, %d), skip (%d, %d)",
					stepRes.HonestBlocks, stepRes.AdversaryBlocks, skipRes.HonestBlocks, skipRes.AdversaryBlocks)
			}
		})
	}
}

// sparseCases are configurations in the fast path's payoff regime —
// n·p ≪ 1 per round, where almost every round is quiet — including the
// large-n benchmark parameterization. The step engine is the reference.
func sparseCases(t *testing.T) map[string]goldenCase {
	t.Helper()
	large := params.Params{N: 100000, P: 1e-6, Delta: 10, Nu: 0.3}
	largeRounds := 3000
	if testing.Short() {
		// The step-engine reference at n=10⁵ dominates the short-mode
		// gate; a few hundred rounds still cross several mining events.
		largeRounds = 400
	}
	tiny := params.Params{N: 12, P: 1e-4, Delta: 3, Nu: 0.3}
	sw, err := adversary.NewSwitcher(97,
		adversary.MaxDelay{},
		&adversary.Selfish{},
		&adversary.Balance{},
	)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]goldenCase{
		"large-passive": {cfg: engine.Config{Params: large, Rounds: largeRounds, Seed: 21}},
		"large-selfish": {cfg: engine.Config{Params: large, Rounds: largeRounds, Seed: 22,
			Adversary: &adversary.Selfish{}}},
		"tiny-switcher": {cfg: engine.Config{Params: tiny, Rounds: 5000, Seed: 23,
			Adversary: sw}},
		"tiny-private": {cfg: engine.Config{Params: tiny, Rounds: 5000, Seed: 24,
			Adversary: &adversary.PrivateMining{MinForkDepth: 2}}},
	}
}

// TestFastForwardSparseEquivalence compares the full RoundRecord stream
// — every field of every round, not a hash — between step and
// fast-forward engines on sparse-regime configurations, across shard
// counts. This is the regime where fast-forward actually skips almost
// every round, so any draw-order or record-synthesis bug surfaces here.
func TestFastForwardSparseEquivalence(t *testing.T) {
	for name := range sparseCases(t) {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("%s/P=%d", name, shards), func(t *testing.T) {
				// Fresh case per engine: strategies are stateful.
				_, stepLedger, stepRes := runArtifacts(t, sparseCases(t)[name], false, shards)
				_, skipLedger, skipRes := runArtifacts(t, sparseCases(t)[name], true, shards)
				if len(stepRes.Records) != len(skipRes.Records) {
					t.Fatalf("record counts differ: step %d, skip %d", len(stepRes.Records), len(skipRes.Records))
				}
				for i := range stepRes.Records {
					if stepRes.Records[i] != skipRes.Records[i] {
						t.Fatalf("round %d record differs:\nstep %+v\nskip %+v",
							i+1, stepRes.Records[i], skipRes.Records[i])
					}
				}
				if stepLedger != skipLedger {
					t.Errorf("ledger accounting differs: step %+v, skip %+v", stepLedger, skipLedger)
				}
				if !reflect.DeepEqual(stepRes.FinalTips, skipRes.FinalTips) {
					t.Error("final tips differ")
				}
				if stepRes.Tree.Len() != skipRes.Tree.Len() || stepRes.Tree.Best() != skipRes.Tree.Best() {
					t.Error("tree shape differs")
				}
			})
		}
	}
}

// TestFastForwardSweepParity pins the knob's threading through the
// sweep pipelines: RunSweep and RunSweepDistributed grids with
// WithFastForward are byte-identical (MarshalCells encoding) to the
// plain RunSweep grid — across cells whose (ν, c) coordinates put them
// on both sides of the arming predicate.
func TestFastForwardSweepParity(t *testing.T) {
	grid := SweepGrid{
		N:        24,
		Delta:    3,
		NuValues: []float64{0.1, 0.3},
		CValues:  []float64{1, 40},
	}
	opts := []Option{
		WithRounds(400),
		WithSeed(17),
		WithConsistency(2, 0),
		WithAdversaryName("selfish", AdversaryOpts{}),
		WithReplicates(2),
	}
	marshal := func(cells []AggregateCell) string {
		var buf bytes.Buffer
		if err := MarshalCells(&buf, cells); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref, err := RunSweep(context.Background(), grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(ref)
	ffOpts := append(append([]Option(nil), opts...), WithFastForward())
	got, err := RunSweep(context.Background(), grid, ffOpts...)
	if err != nil {
		t.Fatal(err)
	}
	if g := marshal(got); g != want {
		t.Errorf("RunSweep grid differs with fast-forward:\ngot:\n%s\nwant:\n%s", g, want)
	}
	dist, err := RunSweepDistributed(context.Background(), grid,
		append(append([]Option(nil), ffOpts...), WithWorkers(2), WithTargetShards(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if g := marshal(dist); g != want {
		t.Errorf("distributed grid differs with fast-forward:\ngot:\n%s\nwant:\n%s", g, want)
	}
}

// TestFastForwardAdversaryStateIdentical pins the ObserveQuiet replay:
// the strategies' public diagnostics — activation counts, balance
// counters, publication stats — must end identical whether quiet rounds
// were stepped one by one or compressed into span observations.
func TestFastForwardAdversaryStateIdentical(t *testing.T) {
	base := params.Params{N: 40, P: 0.005, Delta: 4, Nu: 0.3}
	run := func(adv engine.Adversary, ff bool) {
		e, err := engine.New(engine.Config{Params: base, Rounds: 4000, Seed: 31, Adversary: adv, FastForward: ff})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("balance", func(t *testing.T) {
		step, skip := &adversary.Balance{}, &adversary.Balance{}
		run(step, false)
		run(skip, true)
		if *step != *skip {
			t.Errorf("balance counters differ: step %+v, skip %+v", *step, *skip)
		}
	})
	t.Run("private-mining", func(t *testing.T) {
		step := &adversary.PrivateMining{MinForkDepth: 3}
		skip := &adversary.PrivateMining{MinForkDepth: 3}
		run(step, false)
		run(skip, true)
		if step.Published != skip.Published || step.DeepestFork != skip.DeepestFork {
			t.Errorf("private-mining stats differ: step (%d, %d), skip (%d, %d)",
				step.Published, step.DeepestFork, skip.Published, skip.DeepestFork)
		}
	})
	t.Run("selfish", func(t *testing.T) {
		step, skip := &adversary.Selfish{}, &adversary.Selfish{}
		run(step, false)
		run(skip, true)
		if step.Overrides != skip.Overrides {
			t.Errorf("selfish overrides differ: step %d, skip %d", step.Overrides, skip.Overrides)
		}
	})
	t.Run("switcher", func(t *testing.T) {
		mk := func() *adversary.Switcher {
			sw, err := adversary.NewSwitcher(130,
				adversary.MaxDelay{},
				&adversary.Balance{},
				&adversary.PrivateMining{MinForkDepth: 3},
			)
			if err != nil {
				t.Fatal(err)
			}
			return sw
		}
		step, skip := mk(), mk()
		run(step, false)
		run(skip, true)
		if step.Activations != skip.Activations {
			t.Errorf("switcher activations differ: step %d, skip %d", step.Activations, skip.Activations)
		}
	})
}
