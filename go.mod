module neatbound

go 1.24
