package neatbound

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"neatbound/internal/store"
	"neatbound/internal/sweepsvc"
)

// newSweepServer starts an in-process sweepd (service + HTTP handler)
// over a fresh store and returns a client for it.
func newSweepServer(t *testing.T) (*SweepClient, *sweepsvc.Service) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc, err := sweepsvc.New(sweepsvc.Options{Store: st, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return NewSweepClient(ts.URL, ts.Client()), svc
}

var sweepClientGrid = SweepGrid{
	N: 10, Delta: 3,
	NuValues: []float64{0.2, 0.3},
	CValues:  []float64{1, 2},
}

func sweepClientOpts() []Option {
	return []Option{
		WithRounds(400),
		WithSeed(7),
		WithConsistency(4, 0),
		WithReplicates(2),
		WithAdversaryName("private", AdversaryOpts{ForkDepth: 4}),
	}
}

// TestSweepClientEndToEnd drives the full HTTP round trip — submit,
// SSE stream, result — and holds the service to the tentpole promise:
// the served bytes equal a cold single-process RunSweep, and a
// resubmission is served entirely from the store.
func TestSweepClientEndToEnd(t *testing.T) {
	client, svc := newSweepServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	st, err := client.Submit(ctx, sweepClientGrid, sweepClientOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "queued" && st.State != "running" && st.State != "done" {
		t.Fatalf("fresh job in state %q", st.State)
	}

	var types []string
	if err := client.Stream(ctx, st.ID, func(ev SweepJobEvent) error {
		types = append(types, ev.Type)
		return nil
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if types[0] != "queued" || types[len(types)-1] != "done" {
		t.Errorf("event stream %v, want queued..done", types)
	}
	cellEvents := 0
	for _, ty := range types {
		if ty == "cell" {
			cellEvents++
		}
	}
	if want := len(sweepClientGrid.NuValues) * len(sweepClientGrid.CValues); cellEvents != want {
		t.Errorf("%d cell events, want %d", cellEvents, want)
	}

	raw, err := client.ResultRaw(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := RunSweep(ctx, sweepClientGrid, sweepClientOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := MarshalCells(&want, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, want.Bytes()) {
		t.Errorf("served bytes differ from cold RunSweep:\ngot:\n%s\nwant:\n%s", raw, want.Bytes())
	}

	// Wait composes Stream + Result; on a resubmission everything comes
	// from the store and the decoded cells still match.
	computed := svc.ComputedCells()
	st2, err := client.Submit(ctx, sweepClientGrid, sweepClientOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	cells2, err := client.Wait(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if svc.ComputedCells() != computed {
		t.Errorf("resubmission recomputed cells: %d -> %d", computed, svc.ComputedCells())
	}
	status, err := client.Status(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != SweepJobDone || status.CellsCached != status.CellsTotal {
		t.Errorf("resubmission status %+v, want done with all %d cells cached", status, status.CellsTotal)
	}
	var got2 bytes.Buffer
	if err := MarshalCells(&got2, cells2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2.Bytes(), want.Bytes()) {
		t.Error("Wait-decoded cells differ from cold RunSweep")
	}
}

func TestSweepClientErrors(t *testing.T) {
	client, _ := newSweepServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Unknown job: 404 with the server's error body.
	if _, err := client.Status(ctx, "job-999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("unknown-job status error = %v, want HTTP 404", err)
	}
	if _, err := client.ResultRaw(ctx, "job-999"); err == nil {
		t.Error("unknown-job result did not error")
	}

	// Invalid submission: surfaced as the server's 400.
	bad := sweepClientGrid
	bad.NuValues = nil
	if _, err := client.Submit(ctx, bad, sweepClientOpts()...); err == nil {
		t.Error("empty grid accepted")
	}

	// Result before done: 409.
	st, err := client.Submit(ctx, sweepClientGrid, append(sweepClientOpts(), WithRounds(200000))...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.ResultRaw(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("early result error = %v, want HTTP 409", err)
	}

	// Cancel over HTTP reaches the job.
	if _, err := client.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		status, err := client.Status(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if status.State == SweepJobCancelled {
			break
		}
		if status.State == SweepJobDone || time.Now().After(deadline) {
			t.Fatalf("job state %q after cancel", status.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := client.Wait(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("Wait on cancelled job = %v, want cancelled error", err)
	}
}

// TestSweepRequestScope pins which options travel to the server as
// data and which are rejected as server-side (execution placement is
// the server's call, not the submitter's).
func TestSweepRequestScope(t *testing.T) {
	req, err := SweepRequest(sweepClientGrid,
		WithRounds(500), WithSeed(9), WithConsistency(5, 10), WithReplicates(3),
		WithAdversaryName("private", AdversaryOpts{ForkDepth: 6}),
		WithShards(2), WithFastForward(), WithCompaction(100, 8), WithCheckerRetention(16))
	if err != nil {
		t.Fatal(err)
	}
	if req.Rounds != 500 || req.Seed != 9 || req.T != 5 || req.SampleEvery != 10 ||
		req.Replicates != 3 || req.Adversary != "private" || req.ForkDepth != 6 ||
		req.EngineShards != 2 || !req.FastForward || req.CompactEvery != 100 ||
		req.CompactMinRetire != 8 || req.CheckerRetention != 16 {
		t.Errorf("request did not carry the option vocabulary: %+v", req)
	}
	if _, err := SweepRequest(sweepClientGrid, WithWorkers(4)); err == nil {
		t.Error("WithWorkers accepted in a submission — fleet sizing is server-side")
	}
	if _, err := SweepRequest(sweepClientGrid, WithTargetShards(4)); err == nil {
		t.Error("WithTargetShards accepted in a submission — shard sizing is server-side")
	}
}
