// Benchmarks regenerating every evaluation artifact of the paper plus the
// extension experiments S1–S6 of DESIGN.md (S7 and the Inequality-47
// validation run via cmd/report). Each benchmark both times the
// regeneration and asserts the qualitative result (who wins, which side of
// the bound), so `go test -bench=. -benchmem` doubles as an experiment
// runner. EXPERIMENTS.md records the measured numbers.
package neatbound

import (
	"math"
	"testing"

	"neatbound/internal/bounds"
	"neatbound/internal/figures"
	"neatbound/internal/markov"
	"neatbound/internal/params"
	"neatbound/internal/rng"
)

// BenchmarkFigure1 regenerates the paper's Figure 1: the three νmax-vs-c
// curves at the paper's scale (the closed forms are n- and Δ-exact).
func BenchmarkFigure1(b *testing.B) {
	grid := figures.Figure1CDefault(61)
	for i := 0; i < b.N; i++ {
		series, err := figures.Figure1(grid)
		if err != nil {
			b.Fatal(err)
		}
		// Figure-1 shape: blue ≤ magenta < red pointwise.
		for j := range grid {
			if !(series[1].Y[j] <= series[0].Y[j] && series[0].Y[j] < series[2].Y[j]) {
				b.Fatalf("curve ordering violated at c=%g", grid[j])
			}
		}
	}
}

// BenchmarkTableI regenerates Table I at the paper's Figure-1
// parameterization (n = 10⁵, Δ = 10¹³).
func BenchmarkTableI(b *testing.B) {
	pr, err := ParamsFromC(100000, int(1e13), 0.3, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tab, err := ComputeTableI(pr)
		if err != nil {
			b.Fatal(err)
		}
		if math.Abs(tab.Alpha+tab.ABar-1) > 1e-9 {
			b.Fatal("α + ᾱ ≠ 1")
		}
	}
}

// BenchmarkFigure2SuffixChain regenerates Figure 2: constructing the C_F
// chain and validating its stationary distribution (37a–d) against the
// direct linear solve.
func BenchmarkFigure2SuffixChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := markov.NewSuffixChain(0.2, 16)
		if err != nil {
			b.Fatal(err)
		}
		analytic := s.AnalyticStationary()
		direct, err := s.Chain().StationaryDirect()
		if err != nil {
			b.Fatal(err)
		}
		if tv := markov.TotalVariation(analytic, direct); tv > 1e-9 {
			b.Fatalf("Eqs. (37a–d) mismatch: TV %g", tv)
		}
	}
}

// BenchmarkRemark1Regimes regenerates the Remark-1 regime table at
// Δ = 10¹³ and asserts the paper's claimed ranges and slacks.
func BenchmarkRemark1Regimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := figures.Remark1Table(1e13)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
		if rows[0].SlackMinusOne > 1e-4 || rows[1].SlackMinusOne > 1e-2 {
			b.Fatalf("slacks %g, %g exceed paper's claims", rows[0].SlackMinusOne, rows[1].SlackMinusOne)
		}
	}
}

// BenchmarkConvergenceRate is experiment S1: simulate and compare the
// convergence-opportunity count with T·ᾱ^{2Δ}α₁ (Eq. 26).
func BenchmarkConvergenceRate(b *testing.B) {
	pr, err := NewParams(100, 1e-3, 3, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	const rounds = 20000
	for i := 0; i < b.N; i++ {
		rep, err := Simulate(SimulationConfig{
			Params: pr, Rounds: rounds, Seed: uint64(i), T: 6,
			Adversary: NewMaxDelayAdversary(),
		})
		if err != nil {
			b.Fatal(err)
		}
		want := rep.PredictedConvergence
		if want < 20 {
			b.Fatalf("underpowered: predicted %g", want)
		}
		if rel := math.Abs(float64(rep.Ledger.Convergence)-want) / want; rel > 0.5 {
			b.Fatalf("S1: convergence %d vs predicted %g", rep.Ledger.Convergence, want)
		}
	}
}

// BenchmarkAdversaryCount is experiment S2: adversarial block count vs
// T·pνn (Eq. 27).
func BenchmarkAdversaryCount(b *testing.B) {
	pr, err := NewParams(100, 1e-3, 3, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	const rounds = 20000
	for i := 0; i < b.N; i++ {
		rep, err := Simulate(SimulationConfig{
			Params: pr, Rounds: rounds, Seed: uint64(1000 + i), T: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		want := rep.PredictedAdversary
		if rel := math.Abs(float64(rep.AdversaryBlocks)-want) / want; rel > 0.3 {
			b.Fatalf("S2: adversary blocks %d vs predicted %g", rep.AdversaryBlocks, want)
		}
	}
}

// BenchmarkMarkovEmpirical is experiment S3: the empirical visit
// frequencies of a C_F random walk against the analytic stationary
// distribution.
func BenchmarkMarkovEmpirical(b *testing.B) {
	s, err := markov.NewSuffixChain(0.3, 4)
	if err != nil {
		b.Fatal(err)
	}
	pi := s.AnalyticStationary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		freq, err := s.Chain().VisitFrequencies(rng.New(uint64(i)), 0, 200000)
		if err != nil {
			b.Fatal(err)
		}
		if tv := markov.TotalVariation(freq, pi); tv > 0.02 {
			b.Fatalf("S3: TV(empirical, analytic) = %g", tv)
		}
	}
}

// BenchmarkConsistencySweep is experiment S4: the consistency outcome on
// both sides of the bound under the private-mining attack.
func BenchmarkConsistencySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := Sweep(SweepConfig{
			N: 40, Delta: 8,
			NuValues: []float64{0.45},
			CValues:  []float64{0.6, 25},
			Rounds:   20000, Seed: uint64(i), T: 3, Workers: 2,
			NewAdversary: func() Adversary { return NewPrivateMiningAdversary(4) },
		})
		if err != nil {
			b.Fatal(err)
		}
		if cells[0].Err != nil || cells[1].Err != nil {
			b.Fatalf("cell errors: %v %v", cells[0].Err, cells[1].Err)
		}
		if cells[0].Ledger.Margin() >= cells[1].Ledger.Margin() {
			b.Fatalf("S4: Lemma-1 margin did not improve with c: %d vs %d",
				cells[0].Ledger.Margin(), cells[1].Ledger.Margin())
		}
	}
}

// BenchmarkChainGrowthQuality is experiment S5: growth and quality under
// the max-delay adversary.
func BenchmarkChainGrowthQuality(b *testing.B) {
	pr, err := NewParams(40, 1e-3, 4, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := Simulate(SimulationConfig{
			Params: pr, Rounds: 20000, Seed: uint64(i), T: 6,
			Adversary: NewMaxDelayAdversary(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.ChainGrowthRate <= 0 || rep.ChainQuality <= 0 {
			b.Fatalf("S5: growth %g quality %g", rep.ChainGrowthRate, rep.ChainQuality)
		}
	}
}

// BenchmarkLemmaChain is experiment S6: the numeric verification of the
// implication chain (52)–(59) at the paper's scale.
func BenchmarkLemmaChain(b *testing.B) {
	eps := bounds.Epsilons{E1: 0.05, E2: 0.05}
	minC, err := bounds.Theorem2MinC(0.3, 1e13, eps)
	if err != nil {
		b.Fatal(err)
	}
	pr := params.MustFromC(100000, int(1e13), 0.3, minC*1.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checks, err := bounds.VerifyLemmaChain(pr, eps)
		if err != nil {
			b.Fatal(err)
		}
		if !bounds.AllHold(checks) {
			b.Fatalf("S6: %+v failed", bounds.FirstFailure(checks))
		}
	}
}

// BenchmarkStationaryMethods is the DESIGN.md ablation: analytic closed
// form vs power iteration vs direct linear solve on C_F.
func BenchmarkStationaryMethods(b *testing.B) {
	s, err := markov.NewSuffixChain(0.15, 24)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.AnalyticStationary()
		}
	})
	b.Run("power", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Chain().StationaryPower(1e-12, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Chain().StationaryDirect(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulationRound times the engine's steady-state cost per round
// at a mid-size configuration.
func BenchmarkSimulationRound(b *testing.B) {
	pr, err := NewParams(1000, 1e-4, 8, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := Simulate(SimulationConfig{Params: pr, Rounds: 1000, Seed: 1, T: 6})
	if err != nil {
		b.Fatal(err)
	}
	_ = rep
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		rounds += 1000
		if _, err := Simulate(SimulationConfig{Params: pr, Rounds: 1000, Seed: uint64(i), T: 6}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}
