package neatbound

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"neatbound/internal/consistency"
	"neatbound/internal/engine"
	"neatbound/internal/metrics"
)

// legacySimulate re-implements the pre-Runner Simulate data path — the
// single OnRound checker hook plus post-run record replays — so the
// parity tests compare Run's streaming observer stack against the
// historical assembly, not against itself.
func legacySimulate(t *testing.T, cfg SimulationConfig) SimulationReport {
	t.Helper()
	sampleEvery := cfg.SampleEvery
	if sampleEvery <= 0 {
		sampleEvery = cfg.Rounds / 50
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}
	checker, err := consistency.NewChecker(cfg.T, sampleEvery)
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{
		Params:    cfg.Params,
		Rounds:    cfg.Rounds,
		Seed:      cfg.Seed,
		Adversary: cfg.Adversary,
		OnRound:   checker.OnRound,
		Shards:    cfg.Shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	viols, err := checker.Check(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	maxDepth, err := checker.MaxForkDepth(res.Tree)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := consistency.Account(res.Records, cfg.Params.Delta)
	if err != nil {
		t.Fatal(err)
	}
	quality, err := metrics.ChainQuality(res.Tree, res.Tree.Best(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return SimulationReport{
		Violations:           len(viols),
		ViolationList:        viols,
		MaxForkDepth:         maxDepth,
		Ledger:               ledger,
		PredictedConvergence: float64(cfg.Rounds) * cfg.Params.ConvergenceOpportunityRate(),
		PredictedAdversary:   float64(cfg.Rounds) * cfg.Params.AdversaryBlockRate(),
		HonestBlocks:         res.HonestBlocks,
		AdversaryBlocks:      res.AdversaryBlocks,
		ChainGrowthRate:      metrics.ChainGrowthRate(res.Records),
		ChainQuality:         quality,
		MainChainShare:       metrics.MainChainShare(res.Tree),
		TotalBlocks:          res.Tree.Len() - 1,
		LiveBlocks:           res.Tree.LiveBlocks(),
	}
}

// runnerParityCases spans every adversary class on the golden-seed
// parameterizations (the oracle and adaptive-ν golden cases are
// engine-level features pinned by TestGoldenTracesObserver).
func runnerParityCases() []SimulationConfig {
	base := Params{N: 40, P: 0.005, Delta: 4, Nu: 0.3}
	deep := Params{N: 40, P: 0.005, Delta: 8, Nu: 0.45}
	return []SimulationConfig{
		{Params: base, Rounds: 3000, Seed: 1, T: 6},
		{Params: base, Rounds: 3000, Seed: 2, T: 6, Adversary: NewMaxDelayAdversary()},
		{Params: deep, Rounds: 3000, Seed: 3, T: 3, Adversary: NewPrivateMiningAdversary(3)},
		{Params: base, Rounds: 3000, Seed: 5, T: 6, Adversary: NewSelfishAdversary()},
		{Params: deep, Rounds: 3000, Seed: 6, T: 4, Adversary: NewBalanceAdversary(), SampleEvery: 17},
	}
}

func TestRunMatchesLegacySimulate(t *testing.T) {
	for _, shards := range []int{0, 3} {
		for i, cfg := range runnerParityCases() {
			cfg.Shards = shards
			want := legacySimulate(t, cfg)
			// Fresh adversary: strategies are stateful, so rebuild for
			// the second execution.
			fresh := runnerParityCases()[i]
			opts := []Option{
				WithRounds(cfg.Rounds),
				WithSeed(cfg.Seed),
				WithConsistency(cfg.T, cfg.SampleEvery),
				WithShards(shards),
			}
			if fresh.Adversary != nil {
				opts = append(opts, WithAdversary(fresh.Adversary))
			}
			rep, err := Run(context.Background(), cfg.Params, opts...)
			if err != nil {
				t.Fatalf("case %d shards %d: %v", i, shards, err)
			}
			if rep.Partial || rep.RoundsExecuted != cfg.Rounds {
				t.Errorf("case %d shards %d: partial=%v executed=%d", i, shards, rep.Partial, rep.RoundsExecuted)
			}
			if !reflect.DeepEqual(rep.SimulationReport, want) {
				t.Errorf("case %d shards %d: Run report diverged from legacy Simulate\n got %+v\nwant %+v",
					i, shards, rep.SimulationReport, want)
			}
		}
	}
}

func TestRunObserverStack(t *testing.T) {
	pr, err := NewParams(20, 0.002, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 400
	seen := 0
	finished := false
	var progress []int
	var trace bytes.Buffer
	rep, err := Run(context.Background(), pr,
		WithRounds(rounds),
		WithSeed(3),
		WithAdversary(NewMaxDelayAdversary()),
		WithConsistency(6, 0),
		WithTraceJSON(&trace),
		WithProgress(100, func(p Progress) { progress = append(progress, p.Round) }),
		WithObserver(
			ObserverFunc(func(_ *Engine, _ RoundRecord) { seen++ }),
			finishObserverFunc(func(res *RunResult) error {
				finished = true
				if res.Partial {
					return errors.New("unexpected partial")
				}
				return nil
			}),
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RoundsExecuted != rounds || seen != rounds {
		t.Errorf("observer saw %d of %d rounds", seen, rounds)
	}
	if !finished {
		t.Error("OnFinish not dispatched")
	}
	wantProgress := []int{100, 200, 300, 400}
	if !reflect.DeepEqual(progress, wantProgress) {
		t.Errorf("progress = %v, want %v", progress, wantProgress)
	}
	if got := bytes.Count(trace.Bytes(), []byte("\n")); got != rounds {
		t.Errorf("trace has %d lines, want %d", got, rounds)
	}
}

// finishObserverFuncT adapts a function to FinishObserver for tests.
type finishObserverFuncT struct{ fn func(*RunResult) error }

func finishObserverFunc(fn func(*RunResult) error) Observer { return finishObserverFuncT{fn} }

func (f finishObserverFuncT) OnRound(*Engine, RoundRecord) {}

func (f finishObserverFuncT) OnFinish(res *RunResult) error { return f.fn(res) }

func TestRunCancellationMidRun(t *testing.T) {
	pr, err := NewParams(20, 0.002, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const stopAt = 40
	rep, err := Run(ctx, pr,
		WithRounds(1_000_000),
		WithSeed(7),
		WithConsistency(4, 0),
		WithObserver(ObserverFunc(func(_ *Engine, rec RoundRecord) {
			if rec.Round == stopAt {
				cancel()
			}
		})),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("no partial report returned")
	}
	if !rep.Partial {
		t.Error("Partial flag not set")
	}
	// "Within one round": the cancel lands during round stopAt's
	// observer dispatch, so the engine must stop before round stopAt+1.
	if rep.RoundsExecuted != stopAt {
		t.Errorf("executed %d rounds, want exactly %d", rep.RoundsExecuted, stopAt)
	}
	// The partial report still carries the analysis over what ran — the
	// Eq. 26/27 predictions included, which must scale with the executed
	// rounds, not the configured million.
	if rep.Ledger.Rounds != stopAt {
		t.Errorf("ledger covers %d rounds, want %d", rep.Ledger.Rounds, stopAt)
	}
	wantPred := float64(stopAt) * pr.ConvergenceOpportunityRate()
	if rep.PredictedConvergence != wantPred {
		t.Errorf("partial PredictedConvergence = %g, want %g (scaled to executed rounds)",
			rep.PredictedConvergence, wantPred)
	}
}

func TestOptionScopeValidation(t *testing.T) {
	pr, err := NewParams(20, 0.002, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), pr, WithRounds(10), WithReplicates(3)); err == nil ||
		!strings.Contains(err.Error(), "WithReplicates") {
		t.Errorf("sweep-only option accepted by Run: %v", err)
	}
	if _, err := Run(context.Background(), pr, WithRounds(10), WithWorkers(2)); err == nil {
		t.Error("WithWorkers accepted by Run")
	}
	if _, err := Run(context.Background(), pr, Option{}); err == nil {
		t.Error("zero Option accepted")
	}
	grid := SweepGrid{N: 20, Delta: 2, NuValues: []float64{0.25}, CValues: []float64{5}}
	if _, err := RunSweep(context.Background(), grid, WithRounds(100),
		WithObserver(ObserverFunc(func(*Engine, RoundRecord) {}))); err == nil ||
		!strings.Contains(err.Error(), "WithObserver") {
		t.Errorf("run-only option accepted by RunSweep: %v", err)
	}
	if _, err := RunSweep(context.Background(), grid, WithRounds(100),
		WithAdversary(NewMaxDelayAdversary())); err == nil {
		t.Error("WithAdversary accepted by RunSweep")
	}
}

func TestWithAdversaryName(t *testing.T) {
	pr, err := NewParams(20, 0.002, 2, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	byName, err := Run(context.Background(), pr,
		WithRounds(500), WithSeed(9), WithConsistency(4, 0),
		WithAdversaryName("max-delay", AdversaryOpts{}))
	if err != nil {
		t.Fatal(err)
	}
	byValue, err := Run(context.Background(), pr,
		WithRounds(500), WithSeed(9), WithConsistency(4, 0),
		WithAdversary(NewMaxDelayAdversary()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(byName.SimulationReport, byValue.SimulationReport) {
		t.Error("WithAdversaryName(max-delay) diverged from WithAdversary(NewMaxDelayAdversary())")
	}
	if _, err := Run(context.Background(), pr, WithRounds(10),
		WithAdversaryName("bogus", AdversaryOpts{})); err == nil {
		t.Error("unknown adversary name accepted")
	}
	if _, err := Run(context.Background(), pr, WithRounds(10),
		WithAdversary(NewMaxDelayAdversary()),
		WithAdversaryName("max-delay", AdversaryOpts{})); err == nil {
		t.Error("WithAdversary + WithAdversaryName accepted together")
	}
}

func TestRunSweepMatchesLegacyReplicatedStream(t *testing.T) {
	cfg := SweepConfig{
		N: 20, Delta: 2,
		NuValues: []float64{0.2, 0.3},
		CValues:  []float64{2, 8},
		Rounds:   800, Seed: 11, T: 4,
		NewAdversary: func() Adversary { return NewPrivateMiningAdversary(3) },
	}
	var streamed []AggregateCell
	want, err := SweepReplicatedStream(cfg, 3, func(c AggregateCell) { streamed = append(streamed, c) })
	if err != nil {
		t.Fatal(err)
	}
	var got []AggregateCell
	cells, err := RunSweep(context.Background(),
		SweepGrid{N: cfg.N, Delta: cfg.Delta, NuValues: cfg.NuValues, CValues: cfg.CValues},
		WithRounds(cfg.Rounds),
		WithSeed(cfg.Seed),
		WithConsistency(cfg.T, 0),
		WithReplicates(3),
		WithAdversaryName("private", AdversaryOpts{ForkDepth: 3}),
		WithCellObserver(func(c AggregateCell) { got = append(got, c) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("RunSweep cells diverged from SweepReplicatedStream\n got %+v\nwant %+v", cells, want)
	}
	if len(got) != len(streamed) || len(got) != len(cells) {
		t.Errorf("streamed %d cells via observer, legacy streamed %d, grid has %d", len(got), len(streamed), len(cells))
	}
}

func TestRunSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	grid := SweepGrid{N: 20, Delta: 2, NuValues: []float64{0.2, 0.25, 0.3}, CValues: []float64{2, 5, 8}}
	finished := 0
	cells, err := RunSweep(ctx, grid,
		WithRounds(20000),
		WithSeed(13),
		WithConsistency(4, 0),
		WithWorkers(2),
		WithCellObserver(func(AggregateCell) {
			finished++
			cancel() // stop the grid after the first finished cell
		}),
	)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(cells) != 9 {
		t.Fatalf("grid slice has %d slots, want 9", len(cells))
	}
	aggregated := 0
	for _, c := range cells {
		if c.Replicates > 0 {
			aggregated++
		}
	}
	if aggregated == 0 {
		t.Error("no cell finished before cancellation propagated")
	}
	// Cancelling after the first finished cell must prevent most of the
	// grid from running: with 2 workers, at most the in-flight jobs can
	// still land after the producer stops dispatching.
	if aggregated == 9 {
		t.Error("cancellation did not stop the grid — all 9 cells completed")
	}
}

func TestMergeCellStreamsReassemblesPartitions(t *testing.T) {
	// Cross-process sharding: two shards each run a partition of the
	// NuValues, stream their cells as JSON lines, and the driver merges
	// the streams back into one ν-major grid.
	runShard := func(nus []float64) []AggregateCell {
		cells, err := RunSweep(context.Background(),
			SweepGrid{N: 20, Delta: 2, NuValues: nus, CValues: []float64{2, 8}},
			WithRounds(600), WithSeed(17), WithConsistency(4, 0), WithReplicates(2))
		if err != nil {
			t.Fatal(err)
		}
		return cells
	}
	shardA := runShard([]float64{0.3})
	shardB := runShard([]float64{0.2})
	var bufA, bufB bytes.Buffer
	if err := MarshalCells(&bufA, shardA); err != nil {
		t.Fatal(err)
	}
	if err := MarshalCells(&bufB, shardB); err != nil {
		t.Fatal(err)
	}
	merged, err := MergeCellStreams(&bufA, &bufB)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]AggregateCell{}, shardB...), shardA...) // sorted ascending by ν
	if !reflect.DeepEqual(merged, want) {
		t.Errorf("merged stream diverged\n got %+v\nwant %+v", merged, want)
	}
}

func TestUnmarshalCellsRoundTripsErrors(t *testing.T) {
	// An infeasible cell (p out of range) marshals its error string and
	// unmarshals back to a non-nil Err.
	cells, err := RunSweep(context.Background(),
		SweepGrid{N: 4, Delta: 1, NuValues: []float64{0.3}, CValues: []float64{0.01}},
		WithRounds(100), WithConsistency(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Err == nil {
		t.Fatalf("expected one infeasible cell, got %+v", cells)
	}
	var buf bytes.Buffer
	if err := MarshalCells(&buf, cells); err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCells(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Err == nil ||
		back[0].Err.Error() != cells[0].Err.Error() {
		t.Errorf("error did not round-trip: %+v", back)
	}
}

func TestRunAutoShardsBitIdentical(t *testing.T) {
	pr := Params{N: 40, P: 0.005, Delta: 4, Nu: 0.3}
	serial, err := Run(context.Background(), pr,
		WithRounds(1500), WithSeed(21), WithConsistency(6, 0))
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Run(context.Background(), pr,
		WithRounds(1500), WithSeed(21), WithConsistency(6, 0), WithAutoShards())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.SimulationReport, auto.SimulationReport) {
		t.Error("WithAutoShards diverged from the serial run")
	}
}
