package neatbound

import (
	"fmt"
	"testing"

	"neatbound/internal/adversary"
	"neatbound/internal/engine"
	"neatbound/internal/params"
	"neatbound/internal/pool"
	"neatbound/internal/scenario"
)

// These golden hashes pin the scenario layer's observable behavior —
// stochastic delay schedules, the healing partition, player churn and
// skewed mining power — exactly like golden_trace_test.go pins the base
// engine: the same trace hash must come out of every shard count, the
// shared pool, and the FastForward configuration (scenarios disarm the
// fast path, so the flag must be a byte-for-byte no-op, never a silent
// divergence).

// scenarioGoldenCase compiles a scenario spec onto an engine config; the
// base adversary (nil = passive) is wrapped with the scenario's delay
// policy exactly as the sweep pipeline does it.
func scenarioGoldenCase(t *testing.T, spec *scenario.Spec, seed uint64, base engine.Adversary) goldenCase {
	t.Helper()
	pr := params.Params{N: 40, P: 0.005, Delta: 4, Nu: 0.3}
	comp, err := spec.Compile(pr)
	if err != nil {
		t.Fatal(err)
	}
	adv := base
	if comp.Policy != nil {
		if adv == nil {
			adv = engine.PassiveAdversary{}
		}
		adv = scenario.Wrap(adv, comp.Policy)
	}
	return goldenCase{cfg: engine.Config{
		Params:        pr,
		Rounds:        3000,
		Seed:          seed,
		Adversary:     adv,
		Churn:         comp.Churn,
		MiningWeights: comp.Weights,
	}}
}

// scenarioGoldenCases covers every scenario axis alone plus one
// composition (stochastic delay + churn + skewed power) and one
// scenario-over-adversary case (partition with the max-delay strategy
// underneath).
func scenarioGoldenCases(t *testing.T) map[string]goldenCase {
	t.Helper()
	mustByName := func(name string) *scenario.Spec {
		s, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	composed := &scenario.Spec{
		Name:  "composed",
		Delay: &scenario.DelaySpec{Kind: "iid", Seed: 0x10d},
		Churn: &scenario.ChurnSpec{Period: 50, LeaveFrac: 0.25, Seed: 0xc4},
		Power: &scenario.PowerSpec{Heavy: 3},
	}
	return map[string]goldenCase{
		"stochastic-delay": scenarioGoldenCase(t, mustByName("stochastic-delay"), 11, nil),
		"bursty-delay":     scenarioGoldenCase(t, mustByName("bursty-delay"), 12, nil),
		"partition-heal": scenarioGoldenCase(t, mustByName("partition-heal"), 13,
			adversary.MaxDelay{}),
		"churn":        scenarioGoldenCase(t, mustByName("churn"), 14, nil),
		"skewed-power": scenarioGoldenCase(t, mustByName("skewed-power"), 15, nil),
		"composed":     scenarioGoldenCase(t, composed, 16, nil),
	}
}

// scenarioGoldenTraces holds the expected hash per scenario case,
// captured at the scenario layer's introduction. Regenerate by running
// TestScenarioGoldenTraces with -v and copying the logged values — but
// only after convincing yourself the semantic change is intended.
var scenarioGoldenTraces = map[string]uint64{
	"stochastic-delay": 0x4d5d3f835306635e,
	"bursty-delay":     0x79a2a77c07c917f7,
	"partition-heal":   0xc08112a6f6a7c50f,
	"churn":            0xf2fc431c8049683c,
	"skewed-power":     0x26777b27150d8bf5,
	"composed":         0x9899960695d0312b,
}

func TestScenarioGoldenTraces(t *testing.T) {
	for name, gc := range scenarioGoldenCases(t) {
		t.Run(name, func(t *testing.T) {
			got := traceHash(t, gc)
			t.Logf("%-18s %#x", name, got)
			if want := scenarioGoldenTraces[name]; got != want {
				t.Errorf("scenario golden trace %q: hash %#x, want %#x", name, got, want)
			}
		})
	}
}

// TestScenarioGoldenTracesSharded pins that every scenario case is
// bit-identical across delivery shard counts.
func TestScenarioGoldenTracesSharded(t *testing.T) {
	for name, gc := range scenarioGoldenCases(t) {
		for _, shards := range []int{2, 7} {
			gc := gc
			gc.cfg.Shards = shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				got := traceHash(t, gc)
				if want := scenarioGoldenTraces[name]; got != want {
					t.Errorf("scenario golden trace %q at shards=%d: hash %#x, want %#x",
						name, shards, got, want)
				}
			})
		}
	}
}

// TestScenarioGoldenTracesFastForward pins the disarm contract: the
// FastForward flag must be a byte-for-byte no-op under every scenario
// (the engine falls back to stepping), at every shard count.
func TestScenarioGoldenTracesFastForward(t *testing.T) {
	for name, gc := range scenarioGoldenCases(t) {
		for _, shards := range []int{0, 2, 7} {
			gc := gc
			gc.cfg.Shards = shards
			gc.cfg.FastForward = true
			t.Run(fmt.Sprintf("%s/ff-shards=%d", name, shards), func(t *testing.T) {
				got := traceHash(t, gc)
				if want := scenarioGoldenTraces[name]; got != want {
					t.Errorf("scenario golden trace %q with FastForward at shards=%d: hash %#x, want %#x",
						name, shards, got, want)
				}
			})
		}
	}
}

// TestScenarioGoldenTracesPooled pins that running the scenario cases on
// one shared persistent pool changes nothing.
func TestScenarioGoldenTracesPooled(t *testing.T) {
	p := pool.New(3)
	defer p.Close()
	for name, gc := range scenarioGoldenCases(t) {
		for _, shards := range []int{2, 7} {
			gc := gc
			gc.cfg.Shards = shards
			gc.cfg.Pool = p
			t.Run(fmt.Sprintf("%s/pool-shards=%d", name, shards), func(t *testing.T) {
				got := traceHash(t, gc)
				if want := scenarioGoldenTraces[name]; got != want {
					t.Errorf("scenario golden trace %q pooled at shards=%d: hash %#x, want %#x",
						name, shards, got, want)
				}
			})
		}
	}
}
