package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomDelta(t *testing.T) {
	if err := run([]string{"-delta", "1e6", "-nu", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNuOutsideRegime(t *testing.T) {
	// A ν below the regime's lower bound still renders (with a note).
	if err := run([]string{"-delta", "1e13", "-nu", "1e-70"}); err == nil {
		t.Skip("ν outside (0,½) handled by NeatBoundC error — acceptable either way")
	}
}

func TestRunInvalidDelta(t *testing.T) {
	if err := run([]string{"-delta", "0.5"}); err == nil {
		t.Error("Δ<1 accepted")
	}
}
