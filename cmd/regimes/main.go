// Command regimes prints the Remark-1 regime table: the (δ₁, δ₂) pairs of
// the paper, the ν ranges they cover (Inequality 12), and the
// multiplicative slack they impose on 2µ/ln(µ/ν) (Inequality 13).
//
// Usage:
//
//	regimes [-delta 1e13]
package main

import (
	"flag"
	"fmt"
	"os"

	"neatbound/internal/bounds"
	"neatbound/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "regimes:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("regimes", flag.ContinueOnError)
	delta := fs.Float64("delta", 1e13, "delay bound Δ (the paper uses 10¹³)")
	nu := fs.Float64("nu", 0.3, "sample ν at which to evaluate the regime bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out, err := figures.Remark1Text(*delta)
	if err != nil {
		return err
	}
	fmt.Print(out)
	neat, err := bounds.NeatBoundC(*nu)
	if err != nil {
		return err
	}
	fmt.Printf("\nat ν = %g: neat bound 2µ/ln(µ/ν) = %.6g\n", *nu, neat)
	for _, r := range bounds.PaperRegimes {
		lo, hi, err := r.NuRange(*delta)
		if err != nil {
			return err
		}
		if *nu < lo || *nu > hi {
			fmt.Printf("  regime (δ₁=%.3g, δ₂=%.3g): ν outside covered range\n", r.D1, r.D2)
			continue
		}
		minC, err := r.RegimeMinC(*nu, *delta, 1e-6)
		if err != nil {
			return err
		}
		fmt.Printf("  regime (δ₁=%.3g, δ₂=%.3g): c ≥ %.8g suffices (excess over neat: %.3g)\n",
			r.D1, r.D2, minC, minC/neat-1)
	}
	return nil
}
