package main

import "testing"

func TestRunNuOnly(t *testing.T) {
	if err := run([]string{"-nu", "0.3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCOnly(t *testing.T) {
	if err := run([]string{"-c", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerify(t *testing.T) {
	if err := run([]string{"-nu", "0.3", "-c", "2", "-n", "1000", "-delta", "100", "-verify"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifyNeedsBoth(t *testing.T) {
	if err := run([]string{"-nu", "0.3", "-verify"}); err == nil {
		t.Error("-verify without -c accepted")
	}
}

func TestRunNothingGiven(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no arguments accepted")
	}
}

func TestRunInvalidNu(t *testing.T) {
	if err := run([]string{"-nu", "0.9"}); err == nil {
		t.Error("ν=0.9 accepted")
	}
}

func TestRunBadEpsilons(t *testing.T) {
	if err := run([]string{"-nu", "0.3", "-eps1", "2"}); err == nil {
		t.Error("ε₁=2 accepted")
	}
}
