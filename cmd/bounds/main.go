// Command bounds answers "is this parameterization safe?": it evaluates
// the neat bound, the PSS consistency baseline, the PSS attack threshold,
// Theorems 1 and 2, and (optionally) the full Lemma 2–8 verification chain
// at a given (n, Δ, ν, c).
//
// Usage:
//
//	bounds -nu 0.3                      # thresholds at ν
//	bounds -c 2                         # νmax of every curve at c
//	bounds -n 100000 -delta 1000 -nu 0.3 -c 2 -verify
package main

import (
	"flag"
	"fmt"
	"os"

	"neatbound"

	"neatbound/internal/bounds"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bounds:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bounds", flag.ContinueOnError)
	nu := fs.Float64("nu", 0, "adversarial fraction ν ∈ (0, ½)")
	c := fs.Float64("c", 0, "expected Δ-delays per block")
	n := fs.Int("n", 100000, "number of miners (for -verify)")
	delta := fs.Int("delta", 1000, "delay bound Δ (for -verify)")
	verify := fs.Bool("verify", false, "run the Lemma 2–8 verification chain (needs -nu and -c)")
	e1 := fs.Float64("eps1", 0.05, "slack constant ε₁ ∈ (0, 1)")
	e2 := fs.Float64("eps2", 0.05, "slack constant ε₂ > 0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	eps := neatbound.Epsilons{E1: *e1, E2: *e2}
	if *nu > 0 {
		neat, err := neatbound.NeatBoundC(*nu)
		if err != nil {
			return err
		}
		fmt.Printf("at ν = %g:\n", *nu)
		fmt.Printf("  neat bound (this paper):   c > %.6g\n", neat)
		pss, err := bounds.PSSConsistencyMinC(*nu)
		if err != nil {
			return err
		}
		fmt.Printf("  PSS consistency analysis:  c > %.6g\n", pss)
		minC, err := neatbound.Theorem2MinC(*nu, float64(*delta), eps)
		if err != nil {
			return err
		}
		fmt.Printf("  Theorem 2 at Δ=%d, ε=(%g,%g): c ≥ %.6g\n", *delta, *e1, *e2, minC)
	}
	if *c > 0 {
		fmt.Printf("at c = %g:\n", *c)
		v, err := neatbound.NeatBoundNuMax(*c)
		if err != nil {
			return err
		}
		fmt.Printf("  neat νmax (this paper):    %.6g\n", v)
		if v, err = neatbound.PSSConsistencyNuMax(*c); err != nil {
			return err
		}
		fmt.Printf("  PSS consistency νmax:      %.6g\n", v)
		if v, err = neatbound.PSSAttackNuMin(*c); err != nil {
			return err
		}
		fmt.Printf("  PSS attack νmin:           %.6g\n", v)
	}
	if *verify {
		if *nu <= 0 || *c <= 0 {
			return fmt.Errorf("-verify needs both -nu and -c")
		}
		pr, err := neatbound.ParamsFromC(*n, *delta, *nu, *c)
		if err != nil {
			return err
		}
		verdict, err := neatbound.Classify(pr)
		if err != nil {
			return err
		}
		fmt.Println("\nclassification:", verdict)
		checks, err := neatbound.VerifyLemmaChain(pr, eps)
		if err != nil {
			return err
		}
		fmt.Println("lemma chain (52)–(59):")
		for _, ck := range checks {
			status := "ok"
			if !ck.Holds {
				status = "FAIL"
			}
			fmt.Printf("  %-28s %-4s  %s\n", ck.Name, status, ck.Description)
		}
	}
	if *nu <= 0 && *c <= 0 {
		return fmt.Errorf("give -nu and/or -c")
	}
	return nil
}
