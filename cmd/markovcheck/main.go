// Command markovcheck validates the paper's Markov-chain machinery
// (Figure 2 and Section V-A): it builds the suffix chain C_F, compares the
// analytic stationary distribution (Eqs. 37a–d) with the direct linear
// solve and with an empirical random walk, and — for small Δ — materializes
// the concatenated chain C_{F‖P} to confirm the convergence-opportunity
// probability ᾱ^{2Δ}·α₁ (Eq. 44).
//
// Usage:
//
//	markovcheck -alpha 0.2 -delta 4 [-walk 500000] [-concat]
package main

import (
	"flag"
	"fmt"
	"os"

	"neatbound/internal/markov"
	"neatbound/internal/rng"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "markovcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("markovcheck", flag.ContinueOnError)
	alpha := fs.Float64("alpha", 0.2, "per-round probability α of an honest block")
	delta := fs.Int("delta", 4, "delay bound Δ")
	walk := fs.Int("walk", 500000, "random-walk length for the empirical check (0 to skip)")
	concat := fs.Bool("concat", true, "materialize C_F‖P and verify Eq. 44 (small Δ only)")
	alpha1 := fs.Float64("alpha1", 0, "probability of exactly one honest block (default 0.8·α)")
	seed := fs.Uint64("seed", 1, "random seed for the empirical walk")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := markov.NewSuffixChain(*alpha, *delta)
	if err != nil {
		return err
	}
	fmt.Printf("C_F (Figure 2): %d states for Δ = %d, α = %g\n", s.Len(), *delta, *alpha)
	fmt.Printf("  irreducible: %v, ergodic: %v\n", s.Chain().IsIrreducible(), s.Chain().IsErgodic())

	analytic := s.AnalyticStationary()
	direct, err := s.Chain().StationaryDirect()
	if err != nil {
		return err
	}
	fmt.Printf("  TV(analytic Eqs.37a–d, direct solve) = %.3g\n", markov.TotalVariation(analytic, direct))
	if *walk > 0 {
		freq, err := s.Chain().VisitFrequencies(rng.New(*seed), 0, *walk)
		if err != nil {
			return err
		}
		fmt.Printf("  TV(analytic, empirical %d-step walk) = %.3g\n", *walk, markov.TotalVariation(analytic, freq))
	}
	fmt.Println("\n  state                     analytic π    direct π")
	for i := 0; i < s.Len(); i++ {
		fmt.Printf("  %-24s %12.6g %12.6g\n", s.Chain().Name(i), analytic[i], direct[i])
	}

	if *concat {
		a1 := *alpha1
		if a1 <= 0 {
			a1 = 0.8 * *alpha
		}
		cc, err := markov.NewConcatChain(1-*alpha, a1, *delta)
		if err != nil {
			return fmt.Errorf("C_F‖P: %w (reduce -delta or pass -concat=false)", err)
		}
		fmt.Printf("\nC_F‖P: %d states (suffix × window of Δ+1 detailed states)\n", cc.Len())
		prod := cc.ProductFormStationary()
		dir, err := cc.Chain().StationaryDirect()
		if err != nil {
			return err
		}
		fmt.Printf("  TV(product form Eq.40, direct solve) = %.3g\n", markov.TotalVariation(prod, dir))
		idx := cc.ConvergenceStateIndex()
		fmt.Printf("  convergence vertex HN^{≥Δ}‖H₁N^Δ:\n")
		fmt.Printf("    analytic ᾱ^{2Δ}·α₁ (Eq. 44) = %.8g\n", cc.AnalyticConvergenceProb())
		fmt.Printf("    product-form π              = %.8g\n", prod[idx])
		fmt.Printf("    direct-solve π              = %.8g\n", dir[idx])
	}
	return nil
}
