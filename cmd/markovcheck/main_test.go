package main

import "testing"

func TestRunSmallDelta(t *testing.T) {
	if err := run([]string{"-alpha", "0.3", "-delta", "2", "-walk", "10000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoWalkNoConcat(t *testing.T) {
	if err := run([]string{"-alpha", "0.2", "-delta", "5", "-walk", "0", "-concat=false"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunConcatTooLarge(t *testing.T) {
	// Δ=30 would materialize 3^31 states: must error, not OOM.
	if err := run([]string{"-alpha", "0.2", "-delta", "30", "-walk", "0"}); err == nil {
		t.Error("state-space explosion accepted")
	}
}

func TestRunInvalidAlpha(t *testing.T) {
	if err := run([]string{"-alpha", "1.5", "-delta", "2"}); err == nil {
		t.Error("α=1.5 accepted")
	}
}

func TestRunExplicitAlpha1(t *testing.T) {
	if err := run([]string{"-alpha", "0.3", "-delta", "1", "-alpha1", "0.25", "-walk", "0"}); err != nil {
		t.Fatal(err)
	}
}
