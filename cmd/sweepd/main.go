// Command sweepd is the persistent sweep service: a long-running HTTP
// server that accepts sweep-job submissions (the cmd/sweep grid
// vocabulary as JSON), serves every cell it has already computed from a
// durable content-addressed result store, dispatches only the missing
// cells to the distributed sweep coordinator, and streams job progress
// as Server-Sent Events. A job's result is byte-identical to a cold
// single-process run of the same sweep; submitting the same grid twice
// computes each cell exactly once.
//
// Usage:
//
//	sweepd -addr :8632 -store ./sweepd-store
//
// Then, from any HTTP client:
//
//	curl -X POST localhost:8632/jobs -d '{"n":10,"delta":4,"nu_values":[0.2],"c_values":[1,2],"rounds":400,"seed":7,"t":4,"replicates":2}'
//	curl localhost:8632/jobs/job-1                 # status
//	curl -N localhost:8632/jobs/job-1/events       # SSE progress
//	curl localhost:8632/jobs/job-1/result          # finished cell stream (JSONL)
//	curl -X DELETE localhost:8632/jobs/job-1       # cancel
//
// -workers sizes each job's worker fleet, -dist-shards the shard
// granularity, -retries the per-shard reassignment budget, and
// -stall-timeout the per-shard progress deadline (the cmd/sweep
// coordinator flags, applied server-side). -journal FILE makes jobs
// durable: submissions are journalled before they start, and on the
// next boot the daemon resubmits every job that was still in flight
// when it died — already-finished cells come from the store, so a
// restarted job recomputes only what was lost. docs/sweepd.md
// specifies the API, the store layout, and the event schema;
// docs/faults.md the crash-recovery contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"neatbound/internal/store"
	"neatbound/internal/sweepsvc"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// run is the testable server body: it opens the store, builds the
// service, serves until ctx is cancelled, then shuts down gracefully —
// in-flight jobs are cancelled (their finished cells stay in the
// store), open event streams drain, and the store is closed last. If
// ready is non-nil it receives the listener's actual address once
// serving (the "-addr :0" test seam).
func run(ctx context.Context, args []string, stderr io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8632", "HTTP listen address")
	storeDir := fs.String("store", "sweepd-store", "result store directory (created if absent)")
	workers := fs.Int("workers", 0, "worker fleet size per job (0 = 1)")
	distShards := fs.Int("dist-shards", 0, "target shard count per dispatch (0 = one per worker)")
	retries := fs.Int("retries", 0, "per-shard reassignment budget (0 = default 2, negative = disabled)")
	stallTimeout := fs.Duration("stall-timeout", 0, "declare a shard attempt failed after this long without worker progress (0 = disabled)")
	respawnBackoff := fs.Duration("respawn-backoff", 0, "base delay before relaunching a failed worker, doubling with jitter (0 = disabled)")
	journal := fs.String("journal", "", "durable job journal file; unfinished jobs are resubmitted on restart (empty = jobs die with the daemon)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		return err
	}
	defer st.Close()
	if stats := st.Stats(); stats.TailDropped {
		fmt.Fprintf(stderr, "sweepd: store %s: dropped a torn tail record from a previous crash (%d cells intact)\n", *storeDir, stats.Cells)
	}

	svc, err := sweepsvc.New(sweepsvc.Options{
		Store:          st,
		Workers:        *workers,
		TargetShards:   *distShards,
		Retries:        *retries,
		StallTimeout:   *stallTimeout,
		RespawnBackoff: *respawnBackoff,
		Journal:        *journal,
	})
	if err != nil {
		return err
	}
	if *journal != "" {
		recovered, err := svc.Recover()
		if err != nil {
			svc.Close()
			return err
		}
		for _, st := range recovered {
			fmt.Fprintf(stderr, "sweepd: recovered unfinished job as %s (%d cells)\n", st.ID, st.CellsTotal)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	server := &http.Server{Handler: svc.Handler()}
	fmt.Fprintf(stderr, "sweepd: serving on %s (store %s, %d cells cached)\n", ln.Addr(), *storeDir, st.Len())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stderr, "sweepd: shutting down")
	// Cancel jobs first so their event streams reach a terminal state
	// and drain, letting Shutdown complete instead of hanging on open
	// SSE connections.
	svc.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
