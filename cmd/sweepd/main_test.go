package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"neatbound"
)

// TestServerEndToEnd boots the real server body on an ephemeral port,
// runs a job through the façade client, restarts the server on the
// same store, and checks the resubmission is served from disk.
func TestServerEndToEnd(t *testing.T) {
	storeDir := t.TempDir()
	grid := neatbound.SweepGrid{N: 10, Delta: 3, NuValues: []float64{0.2}, CValues: []float64{1, 2}}
	opts := []neatbound.Option{
		neatbound.WithRounds(300),
		neatbound.WithSeed(7),
		neatbound.WithConsistency(4, 0),
		neatbound.WithReplicates(2),
		neatbound.WithAdversaryName("private", neatbound.AdversaryOpts{ForkDepth: 4}),
	}

	boot := func() (addr string, shutdown func() error, logs *bytes.Buffer) {
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		var stderr bytes.Buffer
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-store", storeDir}, &stderr, ready)
		}()
		select {
		case addr = <-ready:
		case err := <-errc:
			t.Fatalf("server died before ready: %v\n%s", err, stderr.String())
		case <-time.After(30 * time.Second):
			t.Fatalf("server never became ready\n%s", stderr.String())
		}
		return addr, func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(30 * time.Second):
				return context.DeadlineExceeded
			}
		}, &stderr
	}

	addr, shutdown, _ := boot()
	client := neatbound.NewSweepClient("http://"+addr, nil)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelCtx()

	st, err := client.Submit(ctx, grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := client.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := neatbound.RunSweep(ctx, grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := neatbound.MarshalCells(&gotBuf, cells); err != nil {
		t.Fatal(err)
	}
	if err := neatbound.MarshalCells(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Errorf("served cells differ from cold RunSweep:\ngot:\n%s\nwant:\n%s", gotBuf.Bytes(), wantBuf.Bytes())
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart on the same store: the resubmission never computes.
	addr, shutdown, logs := boot()
	client = neatbound.NewSweepClient("http://"+addr, nil)
	st, err = client.Submit(ctx, grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	status, err := client.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.CellsCached != status.CellsTotal || status.CellsComputed != 0 {
		t.Errorf("restarted server recomputed: %+v", status)
	}
	if !strings.Contains(logs.String(), "cells cached") {
		t.Errorf("startup log does not report the warm store:\n%s", logs.String())
	}
	if err := shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestServerRejectsBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &stderr, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestServerJournalRecovery kills the daemon with a job still in
// flight and checks the next boot (-journal) resubmits it and runs it
// to the same bytes a never-interrupted submission would have
// produced.
func TestServerJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "jobs.log")
	storeDir := filepath.Join(dir, "store")
	// Rounds are sized so the job cannot plausibly finish in the gap
	// between Submit returning and the daemon being told to shut down.
	grid := neatbound.SweepGrid{N: 10, Delta: 3, NuValues: []float64{0.2}, CValues: []float64{1, 2}}
	opts := []neatbound.Option{
		neatbound.WithRounds(50000),
		neatbound.WithSeed(7),
		neatbound.WithConsistency(4, 0),
		neatbound.WithReplicates(2),
		neatbound.WithAdversaryName("private", neatbound.AdversaryOpts{ForkDepth: 4}),
	}

	boot := func() (addr string, shutdown func() error, logs *bytes.Buffer) {
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		var stderr bytes.Buffer
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-store", storeDir, "-journal", journal}, &stderr, ready)
		}()
		select {
		case addr = <-ready:
		case err := <-errc:
			t.Fatalf("server died before ready: %v\n%s", err, stderr.String())
		case <-time.After(30 * time.Second):
			t.Fatalf("server never became ready\n%s", stderr.String())
		}
		return addr, func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(30 * time.Second):
				return context.DeadlineExceeded
			}
		}, &stderr
	}

	ctx, cancelCtx := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelCtx()

	// Life 1: submit and immediately pull the plug.
	addr, shutdown, _ := boot()
	client := neatbound.NewSweepClient("http://"+addr, nil)
	if _, err := client.Submit(ctx, grid, opts...); err != nil {
		t.Fatal(err)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Life 2: the boot log names the resubmitted job; it must finish
	// with the never-interrupted bytes.
	addr, shutdown, logs := boot()
	defer shutdown()
	var recoveredID string
	for _, line := range strings.Split(logs.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "sweepd: recovered unfinished job as "); ok {
			recoveredID, _, _ = strings.Cut(rest, " ")
		}
	}
	if recoveredID == "" {
		t.Fatalf("boot log reports no recovered job:\n%s", logs.String())
	}
	client = neatbound.NewSweepClient("http://"+addr, nil)
	cells, err := client.Wait(ctx, recoveredID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := neatbound.RunSweep(ctx, grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := neatbound.MarshalCells(&gotBuf, cells); err != nil {
		t.Fatal(err)
	}
	if err := neatbound.MarshalCells(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Errorf("recovered job's cells differ from cold RunSweep:\ngot:\n%s\nwant:\n%s", gotBuf.Bytes(), wantBuf.Bytes())
	}
}
