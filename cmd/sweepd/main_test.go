package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"neatbound"
)

// TestServerEndToEnd boots the real server body on an ephemeral port,
// runs a job through the façade client, restarts the server on the
// same store, and checks the resubmission is served from disk.
func TestServerEndToEnd(t *testing.T) {
	storeDir := t.TempDir()
	grid := neatbound.SweepGrid{N: 10, Delta: 3, NuValues: []float64{0.2}, CValues: []float64{1, 2}}
	opts := []neatbound.Option{
		neatbound.WithRounds(300),
		neatbound.WithSeed(7),
		neatbound.WithConsistency(4, 0),
		neatbound.WithReplicates(2),
		neatbound.WithAdversaryName("private", neatbound.AdversaryOpts{ForkDepth: 4}),
	}

	boot := func() (addr string, shutdown func() error, logs *bytes.Buffer) {
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan string, 1)
		var stderr bytes.Buffer
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-store", storeDir}, &stderr, ready)
		}()
		select {
		case addr = <-ready:
		case err := <-errc:
			t.Fatalf("server died before ready: %v\n%s", err, stderr.String())
		case <-time.After(30 * time.Second):
			t.Fatalf("server never became ready\n%s", stderr.String())
		}
		return addr, func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(30 * time.Second):
				return context.DeadlineExceeded
			}
		}, &stderr
	}

	addr, shutdown, _ := boot()
	client := neatbound.NewSweepClient("http://"+addr, nil)
	ctx, cancelCtx := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancelCtx()

	st, err := client.Submit(ctx, grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := client.Wait(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, err := neatbound.RunSweep(ctx, grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	var gotBuf, wantBuf bytes.Buffer
	if err := neatbound.MarshalCells(&gotBuf, cells); err != nil {
		t.Fatal(err)
	}
	if err := neatbound.MarshalCells(&wantBuf, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBuf.Bytes(), wantBuf.Bytes()) {
		t.Errorf("served cells differ from cold RunSweep:\ngot:\n%s\nwant:\n%s", gotBuf.Bytes(), wantBuf.Bytes())
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Restart on the same store: the resubmission never computes.
	addr, shutdown, logs := boot()
	client = neatbound.NewSweepClient("http://"+addr, nil)
	st, err = client.Submit(ctx, grid, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	status, err := client.Status(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if status.CellsCached != status.CellsTotal || status.CellsComputed != 0 {
		t.Errorf("restarted server recomputed: %+v", status)
	}
	if !strings.Contains(logs.String(), "cells cached") {
		t.Errorf("startup log does not report the warm store:\n%s", logs.String())
	}
	if err := shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestServerRejectsBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if err := run(context.Background(), []string{"-no-such-flag"}, &stderr, nil); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
