package main

import "testing"

func TestRunWithC(t *testing.T) {
	if err := run([]string{"-n", "1000", "-delta", "10", "-nu", "0.3", "-c", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithP(t *testing.T) {
	if err := run([]string{"-n", "1000", "-delta", "10", "-nu", "0.3", "-p", "1e-5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBothCAndP(t *testing.T) {
	if err := run([]string{"-c", "2", "-p", "1e-5"}); err == nil {
		t.Error("both -c and -p accepted")
	}
}

func TestRunRequiresOne(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("neither -c nor -p rejected")
	}
}

func TestRunInvalidNu(t *testing.T) {
	if err := run([]string{"-nu", "0.7", "-c", "2"}); err == nil {
		t.Error("ν=0.7 accepted")
	}
}

func TestRunInvalidP(t *testing.T) {
	if err := run([]string{"-p", "2"}); err == nil {
		t.Error("p=2 accepted")
	}
}
