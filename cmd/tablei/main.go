// Command tablei prints the paper's Table-I quantities (c, α, ᾱ, α₁, …)
// for a parameterization given either as hardness p or as the ratio c.
//
// Usage:
//
//	tablei -n 100000 -delta 1000 -nu 0.3 -c 2
//	tablei -n 100000 -delta 1000 -nu 0.3 -p 5e-9
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"neatbound/internal/figures"
	"neatbound/internal/params"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tablei:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tablei", flag.ContinueOnError)
	n := fs.Int("n", 100000, "number of miners")
	delta := fs.Int("delta", 1000, "maximum adversarial delay Δ (rounds)")
	nu := fs.Float64("nu", 0.3, "adversarial power fraction ν ∈ (0, ½)")
	c := fs.Float64("c", 0, "expected Δ-delays per block, c = 1/(pnΔ)")
	p := fs.Float64("p", 0, "proof-of-work hardness (alternative to -c)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pr params.Params
	switch {
	case *c > 0 && *p > 0:
		return errors.New("give either -c or -p, not both")
	case *c > 0:
		var err error
		if pr, err = params.FromC(*n, *delta, *nu, *c); err != nil {
			return err
		}
	case *p > 0:
		pr = params.Params{N: *n, P: *p, Delta: *delta, Nu: *nu}
		if err := pr.Validate(); err != nil {
			return err
		}
	default:
		return errors.New("one of -c or -p is required")
	}
	out, err := figures.TableIText(pr)
	if err != nil {
		return err
	}
	fmt.Print(out)
	fmt.Printf("  ᾱ^{2Δ}·α₁ (convergence-opportunity rate, Eq. 44) = %.6g\n", pr.ConvergenceOpportunityRate())
	fmt.Printf("  p·ν·n     (adversary block rate, Eq. 27)         = %.6g\n", pr.AdversaryBlockRate())
	return nil
}
