package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickToFile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the experiment suite")
	}
	path := filepath.Join(t.TempDir(), "report.md")
	if err := run([]string{"-quick", "-rounds", "5000", "-replicates", "2", "-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "## Figure 1") {
		t.Error("report missing Figure 1 section")
	}
	if !strings.Contains(string(data), "## S7") {
		t.Error("report missing S7 section")
	}
}

func TestRunBadOutputPath(t *testing.T) {
	if err := run([]string{"-quick", "-o", "/no-such-dir-xyz/report.md"}); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunTooFewRounds(t *testing.T) {
	if err := run([]string{"-rounds", "10"}); err == nil {
		t.Error("tiny rounds accepted")
	}
}
