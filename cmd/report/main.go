// Command report runs the full experiment suite — the paper artifacts
// (Figure 1, Table I, Figure 2, Remark 1) and the simulation validations
// S1–S6 — and emits a markdown report with measured-vs-predicted numbers.
// EXPERIMENTS.md is generated with this tool.
//
// Usage:
//
//	report [-quick] [-o EXPERIMENTS.md] [-rounds N] [-replicates K]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neatbound"
	"neatbound/internal/engine"
	"neatbound/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use the fast smoke-sized configuration")
	out := fs.String("o", "", "output file (default stdout)")
	rounds := fs.Int("rounds", 0, "override base simulation rounds")
	replicates := fs.Int("replicates", 0, "override sweep replicates")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 4, "sweep parallelism")
	advName := fs.String("adversary", "private",
		"S4 attack strategy: "+strings.Join(neatbound.AdversaryNames(), "|"))
	forkDepth := fs.Int("fork-depth", 4, "private adversary's target fork depth")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate the name once; the per-cell factory below cannot fail.
	probe, err := neatbound.NewAdversaryByName(*advName, neatbound.AdversaryOpts{ForkDepth: *forkDepth})
	if err != nil {
		return err
	}
	cfg := report.DefaultConfig
	if *quick {
		cfg = report.QuickConfig
	}
	if *rounds > 0 {
		cfg.Rounds = *rounds
	}
	if *replicates > 0 {
		cfg.Replicates = *replicates
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.AdversaryName = probe.Name()
	name, opts := *advName, neatbound.AdversaryOpts{ForkDepth: *forkDepth}
	cfg.NewAdversary = func() engine.Adversary {
		adv, err := neatbound.NewAdversaryByName(name, opts)
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return adv
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return report.Generate(w, cfg)
}
