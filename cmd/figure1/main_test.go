package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-points", "11"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSVToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig1.csv")
	if err := run([]string{"-points", "5", "-csv", path, "-noplot"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 6 {
		t.Fatalf("csv has %d lines, want header + 5", len(lines))
	}
	if !strings.HasPrefix(lines[0], "c,") {
		t.Errorf("header %q", lines[0])
	}
}

func TestRunExtended(t *testing.T) {
	if err := run([]string{"-points", "7", "-extended", "-n", "10000", "-delta", "1000", "-noplot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunBadCSVPath(t *testing.T) {
	if err := run([]string{"-points", "5", "-csv", "/nonexistent-dir-xyz/f.csv"}); err == nil {
		t.Error("unwritable csv path accepted")
	}
}
