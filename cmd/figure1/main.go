// Command figure1 regenerates Figure 1 of the paper: the maximum
// tolerable adversarial fraction νmax against c = 1/(pnΔ) for the neat
// bound of this paper, the PSS consistency analysis, and the PSS attack.
//
// Usage:
//
//	figure1 [-points 61] [-csv out.csv] [-noplot]
package main

import (
	"flag"
	"fmt"
	"os"

	"neatbound/internal/bounds"
	"neatbound/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figure1:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figure1", flag.ContinueOnError)
	points := fs.Int("points", 61, "number of c grid points on [0.1, 100]")
	csvPath := fs.String("csv", "", "write series as CSV to this file ('-' for stdout)")
	noplot := fs.Bool("noplot", false, "suppress the ASCII plot")
	extended := fs.Bool("extended", false, "add the finite-Δ Theorem-2 and exact-PSS curves")
	n := fs.Int("n", 100000, "miner count for the extended curves")
	delta := fs.Int("delta", 100000, "delay bound for the extended curves")
	if err := fs.Parse(args); err != nil {
		return err
	}
	grid := figures.Figure1CDefault(*points)
	var series []figures.Series
	var err error
	if *extended {
		series, err = figures.Figure1Extended(grid, *n, *delta, bounds.Epsilons{E1: 0.05, E2: 0.05})
	} else {
		series, err = figures.Figure1(grid)
	}
	if err != nil {
		return err
	}
	if *csvPath != "" {
		w := os.Stdout
		if *csvPath != "-" {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := figures.WriteCSV(w, series); err != nil {
			return err
		}
	}
	if !*noplot {
		plot, err := figures.RenderASCII(series, figures.PlotOptions{
			Width: 72, Height: 24, LogX: true, YMin: 0, YMax: 0.5,
		})
		if err != nil {
			return err
		}
		fmt.Println("Figure 1: maximum adversarial fraction νmax vs c = 1/(pnΔ)")
		fmt.Println("(n = 10⁵, Δ = 10¹³ as in the paper; curves are scale-exact)")
		fmt.Println()
		fmt.Print(plot)
	}
	// Key crossings, as discussed in the paper's introduction.
	fmt.Println("\nselected values:")
	fmt.Printf("  %-8s %-18s %-18s %s\n", "c", "neat νmax", "PSS νmax", "attack νmin")
	for _, i := range []int{0, len(grid) / 4, len(grid) / 2, 3 * len(grid) / 4, len(grid) - 1} {
		fmt.Printf("  %-8.3g %-18.6g %-18.6g %.6g\n",
			grid[i], series[0].Y[i], series[1].Y[i], series[2].Y[i])
	}
	return nil
}
