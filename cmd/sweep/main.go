// Command sweep runs a (ν × c) grid of Δ-delay protocol simulations on a
// parallel job queue and prints, per cell, the consistency outcome and
// the Lemma-1 ledger — the empirical counterpart of Figure 1's curves.
//
// Usage:
//
//	sweep -n 40 -delta 8 -nu 0.2,0.3,0.45 -c 0.5,1,2,5,25 -rounds 20000 -adversary private
//
// With -replicates R > 1 each cell runs R times with independent seeds
// and is reported with Wilson confidence bounds; with -json every
// finished cell is emitted immediately as one JSON line (the
// AggregateCell interchange of neatbound.MarshalCells, streamed in
// completion order while the rest of the grid is still running), so long
// sweeps can be piped, monitored incrementally, and — when the grid is
// partitioned across machines — reassembled with
// neatbound.MergeCellStreams. -workers sizes the job pool (0 =
// GOMAXPROCS); -shards additionally parallelizes the delivery phase
// inside each cell's engine, for grids of few, large cells.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"neatbound"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	n := fs.Int("n", 40, "number of miners")
	delta := fs.Int("delta", 8, "delay bound Δ")
	nuList := fs.String("nu", "0.2,0.3,0.45", "comma-separated ν values")
	cList := fs.String("c", "0.5,1,2,5,25", "comma-separated c values")
	rounds := fs.Int("rounds", 20000, "rounds per cell")
	seed := fs.Uint64("seed", 1, "base seed")
	tee := fs.Int("T", 4, "consistency chop parameter")
	advName := fs.String("adversary", "private",
		"strategy: "+strings.Join(neatbound.AdversaryNames(), "|"))
	forkDepth := fs.Int("fork-depth", 4, "private adversary's target fork depth")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS)")
	shards := fs.Int("shards", 0, "per-cell engine delivery shards (0 = serial)")
	replicates := fs.Int("replicates", 1, "independent replicates per cell")
	jsonOut := fs.Bool("json", false, "stream one JSON line per finished cell")
	if err := fs.Parse(args); err != nil {
		return err
	}
	nus, err := parseFloats(*nuList)
	if err != nil {
		return err
	}
	cs, err := parseFloats(*cList)
	if err != nil {
		return err
	}
	// Validate the strategy name up front, before any grid work starts.
	if _, err := neatbound.NewAdversaryByName(*advName, neatbound.AdversaryOpts{ForkDepth: *forkDepth}); err != nil {
		return err
	}
	grid := neatbound.SweepGrid{N: *n, Delta: *delta, NuValues: nus, CValues: cs}
	opts := []neatbound.Option{
		neatbound.WithRounds(*rounds),
		neatbound.WithSeed(*seed),
		neatbound.WithConsistency(*tee, 0),
		neatbound.WithAdversaryName(*advName, neatbound.AdversaryOpts{ForkDepth: *forkDepth}),
		neatbound.WithWorkers(*workers),
		neatbound.WithShards(*shards),
		neatbound.WithReplicates(*replicates),
	}
	if *jsonOut || *replicates > 1 {
		return runStreaming(grid, opts, *jsonOut)
	}
	cells, err := neatbound.RunSweep(context.Background(), grid, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("sweep: n=%d Δ=%d rounds=%d adversary=%s T=%d\n\n", *n, *delta, *rounds, *advName, *tee)
	fmt.Printf("%-7s %-8s %-9s %-8s %-11s %-11s %-8s %s\n",
		"nu", "c", "neat-ok", "viols", "C(conv)", "A(adv)", "margin", "max-fork")
	for _, cell := range cells {
		if cell.Err != nil {
			fmt.Printf("%-7.3g %-8.3g infeasible: %v\n", cell.Nu, cell.C, cell.Err)
			continue
		}
		neat, err := neatbound.NeatBoundC(cell.Nu)
		if err != nil {
			return err
		}
		// A single replicate's aggregate: each mean IS that replicate's
		// integer count.
		fmt.Printf("%-7.3g %-8.3g %-9v %-8.0f %-11.0f %-11.0f %-8.0f %.0f\n",
			cell.Nu, cell.C, cell.C > neat, cell.Violations.Mean,
			cell.Convergence.Mean, cell.Adversary.Mean, cell.Margin.Mean, cell.MaxForkDepth.Mean)
	}
	return nil
}

// runStreaming executes the sweep with progressive per-cell delivery: as
// JSON interchange lines with -json, as a live table otherwise.
func runStreaming(grid neatbound.SweepGrid, opts []neatbound.Option, jsonOut bool) error {
	enc := json.NewEncoder(os.Stdout)
	if !jsonOut {
		fmt.Printf("%-7s %-8s %-5s %-7s %-19s %-13s %s\n",
			"nu", "c", "reps", "viols", "P(viol) 95%", "margin(mean)", "max-fork(mean)")
	}
	emit := func(cell neatbound.AggregateCell) error {
		if jsonOut {
			return neatbound.MarshalCell(enc, cell)
		}
		if cell.Err != nil {
			fmt.Printf("%-7.3g %-8.3g infeasible: %v\n", cell.Nu, cell.C, cell.Err)
			return nil
		}
		fmt.Printf("%-7.3g %-8.3g %-5d %-7d [%.3f, %.3f]      %-13.1f %.1f\n",
			cell.Nu, cell.C, cell.Replicates, cell.ViolationRuns,
			cell.ViolationRateLo, cell.ViolationRateHi,
			cell.Margin.Mean, cell.MaxForkDepth.Mean)
		return nil
	}
	var emitErr error
	opts = append(opts, neatbound.WithCellObserver(func(cell neatbound.AggregateCell) {
		if emitErr == nil {
			emitErr = emit(cell)
		}
	}))
	if _, err := neatbound.RunSweep(context.Background(), grid, opts...); err != nil {
		return err
	}
	return emitErr
}
