// Command sweep runs a (ν × c) grid of Δ-delay protocol simulations on a
// parallel job queue and prints, per cell, the consistency outcome and
// the Lemma-1 ledger — the empirical counterpart of Figure 1's curves.
//
// Usage:
//
//	sweep -n 40 -delta 8 -nu 0.2,0.3,0.45 -c 0.5,1,2,5,25 -rounds 20000 -adversary private
//
// With -replicates R > 1 each cell runs R times with independent seeds
// and is reported with Wilson confidence bounds; with -json every
// finished cell is emitted immediately as one JSON line (the
// AggregateCell interchange of neatbound.MarshalCells, streamed in
// completion order while the rest of the grid is still running), so long
// sweeps can be piped, monitored incrementally, and — when the grid is
// partitioned across machines — reassembled with
// neatbound.MergeCellStreams. -workers sizes the job pool (0 =
// GOMAXPROCS); -shards additionally parallelizes the delivery phase
// inside each cell's engine, for grids of few, large cells.
//
// # Distributed mode
//
// -coordinator W partitions the grid across W worker subprocesses (this
// same binary relaunched with -worker, each speaking the JSONL shard
// protocol of docs/interchange.md on its stdin/stdout) and merges their
// cell streams into the ν-major grid a single-process run would have
// produced, bit for bit; failed shards are reassigned automatically.
// -dist-shards cuts the grid finer than one shard per worker for
// better rebalancing. -worker turns the process into a protocol worker
// (all grid flags are ignored; the coordinator's shard specs carry the
// configuration); it is meant to be spawned by a coordinator, not run
// by hand.
//
// -checkpoint DIR makes a coordinator sweep durable: every committed
// shard is journaled in DIR before it is announced, and a killed sweep
// can be continued with -resume against the same directory — only the
// missing shards are recomputed, and the reassembled grid is
// byte-identical to an uninterrupted run. A checkpoint from a different
// sweep (changed grid, seed, partitioning, …) is refused, never merged.
// -stall-timeout declares a shard attempt dead when its worker makes no
// progress for that long; the shard is requeued like any other failure.
// After the run the coordinator prints a per-shard reassignment summary
// on stderr, broken down by cause (stall / launch / error). See
// docs/faults.md for the full fault-tolerance contract.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"neatbound"
)

// newExecutor launches the coordinator's worker fleet; it is a seam so
// tests can run coordinator mode without real subprocesses. fleet is
// the worker count: the GOMAXPROCS job budget is divided across the
// workers (each relaunched from the current executable in worker mode
// with -workers set), so N workers on one host don't oversubscribe it
// N-fold.
var newExecutor = func(fleet int) neatbound.ShardExecutor {
	jobs := runtime.GOMAXPROCS(0) / fleet
	if jobs < 1 {
		jobs = 1
	}
	return neatbound.NewSubprocessExecutor("", "-worker", "-workers", strconv.Itoa(jobs))
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	n := fs.Int("n", 40, "number of miners")
	delta := fs.Int("delta", 8, "delay bound Δ")
	nuList := fs.String("nu", "0.2,0.3,0.45", "comma-separated ν values")
	cList := fs.String("c", "0.5,1,2,5,25", "comma-separated c values")
	rounds := fs.Int("rounds", 20000, "rounds per cell")
	seed := fs.Uint64("seed", 1, "base seed")
	tee := fs.Int("T", 4, "consistency chop parameter")
	advName := fs.String("adversary", "private",
		"strategy: "+strings.Join(neatbound.AdversaryNames(), "|"))
	forkDepth := fs.Int("fork-depth", 4, "private adversary's target fork depth")
	workers := fs.Int("workers", 0, "parallel sweep workers (0 = GOMAXPROCS; single-process mode only)")
	shards := fs.Int("shards", 0, "per-cell engine delivery shards (0 = serial)")
	replicates := fs.Int("replicates", 1, "independent replicates per cell")
	jsonOut := fs.Bool("json", false, "stream one JSON line per finished cell")
	worker := fs.Bool("worker", false, "serve the shard protocol on stdin/stdout (spawned by -coordinator)")
	coordinator := fs.Int("coordinator", 0, "partition the grid across this many worker subprocesses (0 = single-process)")
	distShards := fs.Int("dist-shards", 0, "target shard count in coordinator mode (0 = one per worker)")
	checkpointDir := fs.String("checkpoint", "", "coordinator mode: journal committed shards in this directory (resumable with -resume)")
	resume := fs.Bool("resume", false, "coordinator mode: replay the -checkpoint journal and compute only the missing shards")
	stallTimeout := fs.Duration("stall-timeout", 0, "coordinator mode: fail a shard attempt after this long without worker progress (0 = disabled)")
	scenarioArg := fs.String("scenario", "",
		"scenario layer per cell: a preset name ("+strings.Join(neatbound.ScenarioNames(), "|")+") or a JSON spec (docs/scenarios.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// SIGINT/SIGTERM cancel the context, so an interrupted coordinator
	// kills its worker fleet instead of orphaning it mid-shard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *worker {
		// Worker mode: everything about the sweep arrives in shard specs;
		// the grid flags above are ignored except -workers, which bounds
		// this worker's job-queue parallelism (the coordinator sets it to
		// its share of the host's budget).
		return neatbound.ServeSweepWorker(ctx, os.Stdin, os.Stdout, *workers)
	}
	nus, err := parseFloats(*nuList)
	if err != nil {
		return err
	}
	cs, err := parseFloats(*cList)
	if err != nil {
		return err
	}
	// Validate the strategy name up front, before any grid work starts.
	if _, err := neatbound.NewAdversaryByName(*advName, neatbound.AdversaryOpts{ForkDepth: *forkDepth}); err != nil {
		return err
	}
	scn, err := neatbound.ParseScenario(*scenarioArg)
	if err != nil {
		return err
	}
	grid := neatbound.SweepGrid{N: *n, Delta: *delta, NuValues: nus, CValues: cs}
	opts := []neatbound.Option{
		neatbound.WithRounds(*rounds),
		neatbound.WithSeed(*seed),
		neatbound.WithConsistency(*tee, 0),
		neatbound.WithAdversaryName(*advName, neatbound.AdversaryOpts{ForkDepth: *forkDepth}),
		neatbound.WithShards(*shards),
		neatbound.WithReplicates(*replicates),
	}
	if scn != nil {
		opts = append(opts, neatbound.WithScenario(scn))
	}
	// Single-process and coordinator mode produce bit-identical grids;
	// the only difference is who executes the cells.
	runGrid := neatbound.RunSweep
	var retrySummary func()
	if *coordinator == 0 {
		if *checkpointDir != "" || *resume || *stallTimeout != 0 {
			return fmt.Errorf("-checkpoint/-resume/-stall-timeout are coordinator-mode flags; add -coordinator W")
		}
	}
	if *resume && *checkpointDir == "" {
		return fmt.Errorf("-resume needs -checkpoint DIR to resume from")
	}
	if *coordinator > 0 {
		if *workers != 0 {
			return fmt.Errorf("-workers sizes the single-process job pool; in coordinator mode the fleet size is -coordinator (got -workers %d)", *workers)
		}
		// Never launch (or budget for) more workers than there are
		// shards: the coordinator would leave the extras idle while each
		// launched worker runs on a divided share of the machine.
		fleet := *coordinator
		if s := neatbound.SweepShards(grid, *replicates, fleet, *distShards); s < fleet {
			fleet = s
		}
		// Fold coordinator progress into a per-shard, per-cause
		// reassignment tally, reported once on stderr after the run — the
		// same counts a sweepd server surfaces in its job status
		// (shard_retries) and SSE stream.
		var retryMu sync.Mutex
		perShard := make(map[int]map[string]int)
		resumed := 0
		opts = append(opts,
			neatbound.WithWorkers(fleet),
			neatbound.WithTargetShards(*distShards),
			neatbound.WithExecutor(newExecutor(fleet)),
			neatbound.WithStallTimeout(*stallTimeout),
			neatbound.WithSweepProgress(func(p neatbound.SweepProgress) {
				retryMu.Lock()
				defer retryMu.Unlock()
				if !p.Retried {
					if p.Reason == neatbound.ShardResumed {
						resumed++
					}
					return
				}
				cause := p.Reason
				if cause == "" {
					cause = "error"
				}
				if perShard[p.Shard] == nil {
					perShard[p.Shard] = make(map[string]int)
				}
				perShard[p.Shard][cause]++
			}),
		)
		if *checkpointDir != "" {
			opts = append(opts, neatbound.WithCheckpointDir(*checkpointDir))
			if *resume {
				opts = append(opts, neatbound.WithResume())
			}
		}
		retrySummary = func() {
			retryMu.Lock()
			defer retryMu.Unlock()
			if resumed > 0 {
				fmt.Fprintf(os.Stderr, "sweep: coordinator: %d shard(s) served from the checkpoint journal\n", resumed)
			}
			if len(perShard) == 0 {
				fmt.Fprintln(os.Stderr, "sweep: coordinator: every shard committed on its first attempt")
				return
			}
			shards := make([]int, 0, len(perShard))
			total := 0
			for s, causes := range perShard {
				shards = append(shards, s)
				for _, c := range causes {
					total += c
				}
			}
			sort.Ints(shards)
			fmt.Fprintf(os.Stderr, "sweep: coordinator: %d shard reassignment(s):\n", total)
			for _, s := range shards {
				causes := perShard[s]
				names := make([]string, 0, len(causes))
				n := 0
				for cause, c := range causes {
					names = append(names, cause)
					n += c
				}
				sort.Strings(names)
				parts := make([]string, 0, len(names))
				for _, cause := range names {
					parts = append(parts, fmt.Sprintf("%s: %d", cause, causes[cause]))
				}
				fmt.Fprintf(os.Stderr, "sweep:   shard %d: reassigned %d time(s) (%s)\n", s, n, strings.Join(parts, ", "))
			}
		}
		runGrid = neatbound.RunSweepDistributed
	} else {
		opts = append(opts, neatbound.WithWorkers(*workers))
	}
	if *jsonOut || *replicates > 1 {
		err := runStreaming(ctx, runGrid, grid, opts, *jsonOut)
		if retrySummary != nil {
			retrySummary()
		}
		return err
	}
	cells, err := runGrid(ctx, grid, opts...)
	if retrySummary != nil {
		retrySummary()
	}
	if err != nil {
		return err
	}
	fmt.Printf("sweep: n=%d Δ=%d rounds=%d adversary=%s T=%d\n\n", *n, *delta, *rounds, *advName, *tee)
	fmt.Printf("%-7s %-8s %-9s %-8s %-11s %-11s %-8s %s\n",
		"nu", "c", "neat-ok", "viols", "C(conv)", "A(adv)", "margin", "max-fork")
	for _, cell := range cells {
		if cell.Err != nil {
			fmt.Printf("%-7.3g %-8.3g infeasible: %v\n", cell.Nu, cell.C, cell.Err)
			continue
		}
		neat, err := neatbound.NeatBoundC(cell.Nu)
		if err != nil {
			return err
		}
		// A single replicate's aggregate: each mean IS that replicate's
		// integer count.
		fmt.Printf("%-7.3g %-8.3g %-9v %-8.0f %-11.0f %-11.0f %-8.0f %.0f\n",
			cell.Nu, cell.C, cell.C > neat, cell.Violations.Mean,
			cell.Convergence.Mean, cell.Adversary.Mean, cell.Margin.Mean, cell.MaxForkDepth.Mean)
	}
	return nil
}

// runStreaming executes the sweep with progressive per-cell delivery: as
// JSON interchange lines with -json, as a live table otherwise. runGrid
// is RunSweep or RunSweepDistributed — the streaming contract (each cell
// once, completion order) is the same.
func runStreaming(ctx context.Context,
	runGrid func(context.Context, neatbound.SweepGrid, ...neatbound.Option) ([]neatbound.AggregateCell, error),
	grid neatbound.SweepGrid, opts []neatbound.Option, jsonOut bool) error {
	enc := json.NewEncoder(os.Stdout)
	if !jsonOut {
		fmt.Printf("%-7s %-8s %-5s %-7s %-19s %-13s %s\n",
			"nu", "c", "reps", "viols", "P(viol) 95%", "margin(mean)", "max-fork(mean)")
	}
	emit := func(cell neatbound.AggregateCell) error {
		if jsonOut {
			return neatbound.MarshalCell(enc, cell)
		}
		if cell.Err != nil {
			fmt.Printf("%-7.3g %-8.3g infeasible: %v\n", cell.Nu, cell.C, cell.Err)
			return nil
		}
		fmt.Printf("%-7.3g %-8.3g %-5d %-7d [%.3f, %.3f]      %-13.1f %.1f\n",
			cell.Nu, cell.C, cell.Replicates, cell.ViolationRuns,
			cell.ViolationRateLo, cell.ViolationRateHi,
			cell.Margin.Mean, cell.MaxForkDepth.Mean)
		return nil
	}
	var emitErr error
	opts = append(opts, neatbound.WithCellObserver(func(cell neatbound.AggregateCell) {
		if emitErr == nil {
			emitErr = emit(cell)
		}
	}))
	if _, err := runGrid(ctx, grid, opts...); err != nil {
		return err
	}
	return emitErr
}
