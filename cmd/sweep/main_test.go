package main

import (
	"os"
	"path/filepath"
	"testing"

	"neatbound"
)

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, 0.2 ,0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 0.3 {
		t.Errorf("parsed %v", got)
	}
	if _, err := parseFloats("1,x,3"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRunSmallGrid(t *testing.T) {
	if err := run([]string{
		"-n", "20", "-delta", "2",
		"-nu", "0.25", "-c", "2,10",
		"-rounds", "1000", "-adversary", "max-delay",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInfeasibleCellPrinted(t *testing.T) {
	// Infeasible cells are reported inline, not fatal.
	if err := run([]string{
		"-n", "4", "-delta", "1",
		"-nu", "0.3", "-c", "0.01",
		"-rounds", "100", "-adversary", "passive",
	}); err != nil {
		t.Fatal(err)
	}
}

// TestRunDistCoordinatorMode drives -coordinator end to end with
// in-process workers (the executor seam spares the test a subprocess
// spawn; the real subprocess protocol is pinned in internal/distsweep
// and the root parity tests).
func TestRunDistCoordinatorMode(t *testing.T) {
	orig := newExecutor
	newExecutor = func(int) neatbound.ShardExecutor { return neatbound.NewInProcessExecutor(0) }
	defer func() { newExecutor = orig }()
	if err := run([]string{
		"-n", "8", "-delta", "2",
		"-nu", "0.2,0.3", "-c", "2,10",
		"-rounds", "200", "-adversary", "max-delay",
		"-replicates", "2",
		"-coordinator", "2", "-dist-shards", "3",
		"-json",
	}); err != nil {
		t.Fatal(err)
	}
	// The plain-table path must work in coordinator mode too.
	if err := run([]string{
		"-n", "8", "-delta", "2",
		"-nu", "0.25", "-c", "2",
		"-rounds", "200",
		"-coordinator", "2",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	if err := run([]string{"-adversary", "bogus", "-rounds", "100"}); err == nil {
		t.Error("unknown adversary accepted")
	}
}

func TestRunBadNuList(t *testing.T) {
	if err := run([]string{"-nu", "abc", "-rounds", "100"}); err == nil {
		t.Error("bad ν list accepted")
	}
}

func TestRunBadCList(t *testing.T) {
	if err := run([]string{"-c", "1,,2", "-rounds", "100"}); err == nil {
		t.Error("bad c list accepted")
	}
}

// TestRunCheckpointResume drives the -checkpoint/-resume flags end to
// end: a checkpointed coordinator run leaves a shard journal behind,
// and a -resume rerun against it completes (serving every shard from
// the journal — byte-identity of resumed grids is pinned in
// internal/distsweep and the façade tests). The flag-validation
// refusals ride along.
func TestRunCheckpointResume(t *testing.T) {
	orig := newExecutor
	newExecutor = func(int) neatbound.ShardExecutor { return neatbound.NewInProcessExecutor(0) }
	defer func() { newExecutor = orig }()
	dir := t.TempDir()
	args := []string{
		"-n", "8", "-delta", "2",
		"-nu", "0.2,0.3", "-c", "2,10",
		"-rounds", "200", "-adversary", "max-delay",
		"-replicates", "2",
		"-coordinator", "2", "-dist-shards", "3",
		"-json", "-checkpoint", dir,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "shards.log")); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpointed run left no shard journal (err %v)", err)
	}
	if err := run(append(args, "-resume")); err != nil {
		t.Fatalf("resume rerun: %v", err)
	}

	if err := run([]string{"-coordinator", "2", "-rounds", "100", "-resume"}); err == nil {
		t.Error("-resume without -checkpoint accepted")
	}
	if err := run([]string{"-rounds", "100", "-checkpoint", t.TempDir()}); err == nil {
		t.Error("-checkpoint without -coordinator accepted")
	}
}
