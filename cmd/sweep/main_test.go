package main

import "testing"

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.1, 0.2 ,0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 0.3 {
		t.Errorf("parsed %v", got)
	}
	if _, err := parseFloats("1,x,3"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRunSmallGrid(t *testing.T) {
	if err := run([]string{
		"-n", "20", "-delta", "2",
		"-nu", "0.25", "-c", "2,10",
		"-rounds", "1000", "-adversary", "max-delay",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunInfeasibleCellPrinted(t *testing.T) {
	// Infeasible cells are reported inline, not fatal.
	if err := run([]string{
		"-n", "4", "-delta", "1",
		"-nu", "0.3", "-c", "0.01",
		"-rounds", "100", "-adversary", "passive",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	if err := run([]string{"-adversary", "bogus", "-rounds", "100"}); err == nil {
		t.Error("unknown adversary accepted")
	}
}

func TestRunBadNuList(t *testing.T) {
	if err := run([]string{"-nu", "abc", "-rounds", "100"}); err == nil {
		t.Error("bad ν list accepted")
	}
}

func TestRunBadCList(t *testing.T) {
	if err := run([]string{"-c", "1,,2", "-rounds", "100"}); err == nil {
		t.Error("bad c list accepted")
	}
}
