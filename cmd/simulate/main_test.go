package main

import "testing"

func TestRunShortSimulation(t *testing.T) {
	if err := run([]string{"-n", "20", "-delta", "2", "-nu", "0.25", "-c", "5", "-rounds", "2000", "-adversary", "passive"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryAdversary(t *testing.T) {
	for _, adv := range []string{"passive", "max-delay", "private", "balance", "selfish"} {
		if err := run([]string{"-n", "20", "-delta", "2", "-nu", "0.25", "-c", "5",
			"-rounds", "500", "-adversary", adv}); err != nil {
			t.Errorf("%s: %v", adv, err)
		}
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	if err := run([]string{"-adversary", "nope", "-rounds", "10"}); err == nil {
		t.Error("unknown adversary accepted")
	}
}

func TestRunInfeasibleParams(t *testing.T) {
	// c so small that p ≥ 1.
	if err := run([]string{"-n", "4", "-delta", "1", "-c", "0.01", "-rounds", "10"}); err == nil {
		t.Error("infeasible parameterization accepted")
	}
}

func TestNewAdversaryNames(t *testing.T) {
	for _, name := range []string{"passive", "max-delay", "private", "balance", "selfish"} {
		adv, err := newAdversary(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if adv.Name() != name && !(name == "private" && adv.Name() == "private-mining") {
			t.Errorf("constructor for %q named %q", name, adv.Name())
		}
	}
}
