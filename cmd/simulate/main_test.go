package main

import (
	"testing"

	"neatbound"
)

func TestRunShortSimulation(t *testing.T) {
	if err := run([]string{"-n", "20", "-delta", "2", "-nu", "0.25", "-c", "5", "-rounds", "2000", "-adversary", "passive"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryAdversary(t *testing.T) {
	for _, adv := range []string{"passive", "max-delay", "private", "balance", "selfish"} {
		if err := run([]string{"-n", "20", "-delta", "2", "-nu", "0.25", "-c", "5",
			"-rounds", "500", "-adversary", adv}); err != nil {
			t.Errorf("%s: %v", adv, err)
		}
	}
}

func TestRunUnknownAdversary(t *testing.T) {
	if err := run([]string{"-adversary", "nope", "-rounds", "10"}); err == nil {
		t.Error("unknown adversary accepted")
	}
}

func TestRunInfeasibleParams(t *testing.T) {
	// c so small that p ≥ 1.
	if err := run([]string{"-n", "4", "-delta", "1", "-c", "0.01", "-rounds", "10"}); err == nil {
		t.Error("infeasible parameterization accepted")
	}
}

func TestNewAdversaryNames(t *testing.T) {
	for _, name := range neatbound.AdversaryNames() {
		adv, err := neatbound.NewAdversaryByName(name, neatbound.AdversaryOpts{ForkDepth: 3})
		if err != nil {
			t.Fatal(err)
		}
		if adv.Name() != name && !(name == "private" && adv.Name() == "private-mining") {
			t.Errorf("constructor for %q named %q", name, adv.Name())
		}
	}
}

func TestParseShards(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int
		ok   bool
	}{
		{"0", 0, true},
		{"4", 4, true},
		{"auto", neatbound.AutoShards, true},
		{"AUTO", neatbound.AutoShards, true},
		{" auto ", neatbound.AutoShards, true},
		{"-1", 0, false},
		{"many", 0, false},
	} {
		got, err := parseShards(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("parseShards(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("parseShards(%q) accepted", tc.in)
		}
	}
}

func TestRunAutoShards(t *testing.T) {
	if err := run([]string{"-n", "20", "-delta", "2", "-nu", "0.25", "-c", "5",
		"-rounds", "500", "-adversary", "passive", "-shards", "auto"}); err != nil {
		t.Fatal(err)
	}
}
