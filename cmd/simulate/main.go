// Command simulate executes Nakamoto's protocol in the Δ-delay model
// under a chosen adversary and reports the consistency analysis: the
// Definition-1 violations at chop T, the Lemma-1 ledger (convergence
// opportunities vs adversarial blocks) against the Eq. 26/27 predictions,
// and the chain growth/quality metrics.
//
// Usage:
//
//	simulate -n 100 -delta 4 -nu 0.3 -c 2 -rounds 100000 -adversary max-delay -T 8
//
// -shards controls the engine's delivery-phase parallelism: an integer
// pins P, "auto" picks it from GOMAXPROCS and n. Any value is
// bit-identical.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"neatbound"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

// parseShards maps the -shards flag value onto engine shard counts:
// "auto" selects the automatic heuristic, anything else must be an
// integer (0 = serial).
func parseShards(s string) (int, error) {
	if strings.EqualFold(strings.TrimSpace(s), "auto") {
		return neatbound.AutoShards, nil
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, fmt.Errorf("parsing -shards %q (want an integer or \"auto\"): %w", s, err)
	}
	if v < 0 {
		return 0, fmt.Errorf("-shards %d must be ≥ 0 (or \"auto\")", v)
	}
	return v, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	n := fs.Int("n", 100, "number of miners")
	delta := fs.Int("delta", 4, "delay bound Δ (rounds)")
	nu := fs.Float64("nu", 0.3, "adversarial power fraction")
	c := fs.Float64("c", 2, "expected Δ-delays per block, c = 1/(pnΔ)")
	rounds := fs.Int("rounds", 100000, "rounds to simulate")
	seed := fs.Uint64("seed", 1, "random seed")
	advName := fs.String("adversary", "max-delay",
		"strategy: "+strings.Join(neatbound.AdversaryNames(), "|"))
	forkDepth := fs.Int("fork-depth", 4, "private adversary's target fork depth")
	tee := fs.Int("T", 8, "consistency chop parameter (Definition 1)")
	shards := fs.String("shards", "0",
		"engine delivery shards: an integer (0 = serial) or \"auto\"; any value is bit-identical")
	ff := fs.Bool("fast-forward", false,
		"event-driven round skipping for sparse-mining regimes; bit-identical (see docs/fastforward.md)")
	scenarioArg := fs.String("scenario", "",
		"scenario layer: a preset name ("+strings.Join(neatbound.ScenarioNames(), "|")+") or a JSON spec (docs/scenarios.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pr, err := neatbound.ParamsFromC(*n, *delta, *nu, *c)
	if err != nil {
		return err
	}
	scn, err := neatbound.ParseScenario(*scenarioArg)
	if err != nil {
		return err
	}
	nshards, err := parseShards(*shards)
	if err != nil {
		return err
	}
	verdict, err := neatbound.Classify(pr)
	if err != nil {
		return err
	}
	fmt.Printf("parameters: n=%d Δ=%d ν=%g c=%g (p=%.4g), adversary=%s, %d rounds\n",
		*n, *delta, *nu, *c, pr.P, *advName, *rounds)
	fmt.Println("theory:    ", verdict)

	opts := []neatbound.Option{
		neatbound.WithRounds(*rounds),
		neatbound.WithSeed(*seed),
		neatbound.WithAdversaryName(*advName, neatbound.AdversaryOpts{ForkDepth: *forkDepth}),
		neatbound.WithConsistency(*tee, 0),
		neatbound.WithShards(nshards),
	}
	if *ff {
		opts = append(opts, neatbound.WithFastForward())
	}
	if scn != nil {
		opts = append(opts, neatbound.WithScenario(scn))
	}
	rep, err := neatbound.Run(context.Background(), pr, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("\nblocks: honest %d, adversarial %d (predicted adversarial %.1f, Eq. 27)\n",
		rep.HonestBlocks, rep.AdversaryBlocks, rep.PredictedAdversary)
	fmt.Printf("convergence opportunities: %d (predicted %.1f, Eq. 26)\n",
		rep.Ledger.Convergence, rep.PredictedConvergence)
	fmt.Printf("Lemma-1 margin C−A: %d (positive ⇒ consistency mechanism winning)\n", rep.Ledger.Margin())
	fmt.Printf("consistency at T=%d: %d violations; deepest fork %d\n",
		*tee, rep.Violations, rep.MaxForkDepth)
	fmt.Printf("chain growth %.5g blocks/round, quality %.3f (fair share µ=%.2f), main-chain share %.3f\n",
		rep.ChainGrowthRate, rep.ChainQuality, pr.Mu(), rep.MainChainShare)
	if rep.Violations > 0 {
		v := rep.ViolationList[0]
		fmt.Printf("first violation: rounds (%d, %d), fork depth %d\n", v.RoundR, v.RoundS, v.ForkDepth)
	}
	return nil
}
