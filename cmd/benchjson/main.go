// Command benchjson runs the engine's hot-path benchmark — the same
// mid-size configuration as BenchmarkSimulationRound — and records the
// result in BENCH_engine.json, so the simulation throughput trajectory
// (rounds/s, ns/round, allocs/round) is tracked across PRs.
//
// Each run appends or replaces one labeled entry:
//
//	go run ./cmd/benchjson -label flat-arena -out BENCH_engine.json
//
// Entries with the same label are replaced in place, so re-running a
// measurement updates it instead of duplicating it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"neatbound"
	"neatbound/internal/params"
)

// entry is one labeled benchmark measurement.
type entry struct {
	Label string `json:"label"`
	Date  string `json:"date"`
	// EngineVersion stamps the engine-semantics version
	// (neatbound.EngineVersion) the measurement ran under, so entries are
	// only compared across identical simulation semantics.
	EngineVersion int `json:"engine_version"`
	// Configuration of the measured run. Shards is the engine's
	// delivery-phase parallelism (0/1 = serial); Cores records the
	// machine's CPU count (runtime.NumCPU()) and Procs the GOMAXPROCS
	// the run could actually use (what sizes the worker pool — it can
	// be lower than Cores under an explicit override or a container CPU
	// quota), both stamped automatically at measurement time — PR-2
	// hand-labeled the cores field and the entries from the 1-core
	// build box were flagged as misleading. Without an honest
	// parallelism record a serial-vs-sharded comparison is meaningless.
	N           int     `json:"n"`
	P           float64 `json:"p"`
	Delta       int     `json:"delta"`
	Nu          float64 `json:"nu"`
	RoundsPerOp int     `json:"rounds_per_op"`
	Iterations  int     `json:"iterations"`
	Shards      int     `json:"shards"`
	// FastForward records whether the run used the engine's event-driven
	// round skipping (bit-identical results; throughput-only knob).
	FastForward bool `json:"fast_forward,omitempty"`
	// CompactEvery/CheckerRetention record the arena-compaction knobs of
	// the measured run (0 = compaction off; bit-identical results,
	// memory-only knob).
	CompactEvery     int `json:"compact_every,omitempty"`
	CheckerRetention int `json:"checker_retention,omitempty"`
	// Scenario records the scenario-layer argument of the measured run
	// (preset name or inline JSON, docs/scenarios.md; "" = default
	// model). Unlike the knobs above it changes simulation semantics, so
	// scenario entries are only comparable to entries with the same
	// scenario.
	Scenario string `json:"scenario,omitempty"`
	Cores    int    `json:"cores"`
	Procs    int    `json:"gomaxprocs,omitempty"`
	// Results, normalized per simulated round.
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	NsPerRound     float64 `json:"ns_per_round"`
	AllocsPerRound float64 `json:"allocs_per_round"`
	BytesPerRound  float64 `json:"bytes_per_round"`
	// HeapPeakBytes is the highest HeapAlloc a 1 ms background sampler
	// observed across the timed runs — the resident-memory story the
	// per-round allocation rate cannot tell (a run can allocate little
	// per round yet hold every block ever mined live). LiveBlocks is the
	// final run's resident arena block count vs TotalBlocks ever mined.
	HeapPeakBytes uint64 `json:"heap_peak_bytes,omitempty"`
	LiveBlocks    int    `json:"live_blocks,omitempty"`
	TotalBlocks   int    `json:"total_blocks,omitempty"`
}

// file is the on-disk BENCH_engine.json layout.
type file struct {
	Benchmark string  `json:"benchmark"`
	Entries   []entry `json:"entries"`
}

func main() {
	var (
		label   = flag.String("label", "current", "entry label (same label replaces)")
		out     = flag.String("out", "BENCH_engine.json", "output JSON path")
		n       = flag.Int("n", 1000, "players")
		p       = flag.Float64("p", 1e-4, "per-query success probability")
		delta   = flag.Int("delta", 8, "network delay bound Δ")
		nu      = flag.Float64("nu", 0.3, "adversarial fraction ν")
		rounds  = flag.Int("rounds", 1000, "rounds per simulation op")
		iters   = flag.Int("iters", 30, "simulation ops to average over")
		shards  = flag.Int("shards", 0, "engine delivery shards (0 = serial)")
		ff      = flag.Bool("fast-forward", false, "enable event-driven round skipping")
		compact = flag.Int("compact-every", 0, "arena compaction interval in rounds (0 = off)")
		retain  = flag.Int("checker-retention", 0, "checker snapshot retention window (0 = full history)")
		scn     = flag.String("scenario", "", "scenario preset name or inline JSON spec (docs/scenarios.md; empty = default model)")
	)
	flag.Parse()

	pr, err := neatbound.NewParams(*n, *p, *delta, *nu)
	if err != nil {
		fatal(err)
	}
	spec, err := neatbound.ParseScenario(*scn)
	if err != nil {
		fatal(err)
	}
	e, err := measure(pr, *rounds, *iters, *shards, *ff, *compact, *retain, spec)
	if err != nil {
		fatal(err)
	}
	e.Scenario = *scn
	e.Label = *label
	e.Date = time.Now().UTC().Format("2006-01-02")

	f := file{Benchmark: "BenchmarkSimulationRound"}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			fatal(fmt.Errorf("benchjson: existing %s is not valid: %w", *out, err))
		}
	}
	replaced := false
	for i := range f.Entries {
		if f.Entries[i].Label == e.Label {
			f.Entries[i] = e
			replaced = true
			break
		}
	}
	if !replaced {
		f.Entries = append(f.Entries, e)
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %s  %.0f rounds/s  %.0f ns/round  %.1f allocs/round  %.0f B/round  peak %.1f MiB  live %d/%d blocks\n",
		*out, e.Label, e.RoundsPerSec, e.NsPerRound, e.AllocsPerRound, e.BytesPerRound,
		float64(e.HeapPeakBytes)/(1<<20), e.LiveBlocks, e.TotalBlocks)
}

// measure times iters runs of a rounds-long simulation (the
// BenchmarkSimulationRound body) and reports per-round cost. Allocation
// counts come from runtime.MemStats deltas, matching -benchmem; peak
// heap comes from a background sampler running across the timed loop.
func measure(pr params.Params, rounds, iters, shards int, fastForward bool, compactEvery, retention int, scenario *neatbound.ScenarioSpec) (entry, error) {
	if iters < 1 || rounds < 1 {
		return entry{}, fmt.Errorf("benchjson: iters and rounds must be ≥ 1")
	}
	var rep neatbound.SimulationReport
	run := func(seed uint64) error {
		var err error
		rep, err = neatbound.Simulate(neatbound.SimulationConfig{
			Params: pr, Rounds: rounds, Seed: seed, T: 6, Shards: shards,
			FastForward:      fastForward,
			CompactEvery:     compactEvery,
			CheckerRetention: retention,
			Scenario:         scenario,
		})
		return err
	}
	// Warm-up run, excluded from the measurement.
	if err := run(0); err != nil {
		return entry{}, err
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	stopSampler := sampleHeapPeak()
	start := time.Now()
	for i := 1; i <= iters; i++ {
		if err := run(uint64(i)); err != nil {
			stopSampler()
			return entry{}, err
		}
	}
	elapsed := time.Since(start)
	heapPeak := stopSampler()
	runtime.ReadMemStats(&m1)

	total := float64(rounds) * float64(iters)
	return entry{
		EngineVersion: neatbound.EngineVersion,
		N:             pr.N, P: pr.P, Delta: pr.Delta, Nu: pr.Nu,
		RoundsPerOp: rounds, Iterations: iters,
		Shards: shards, FastForward: fastForward,
		CompactEvery: compactEvery, CheckerRetention: retention,
		Cores: runtime.NumCPU(), Procs: runtime.GOMAXPROCS(0),
		RoundsPerSec:   total / elapsed.Seconds(),
		NsPerRound:     float64(elapsed.Nanoseconds()) / total,
		AllocsPerRound: float64(m1.Mallocs-m0.Mallocs) / total,
		BytesPerRound:  float64(m1.TotalAlloc-m0.TotalAlloc) / total,
		HeapPeakBytes:  heapPeak,
		LiveBlocks:     rep.LiveBlocks,
		TotalBlocks:    rep.TotalBlocks,
	}, nil
}

// sampleHeapPeak starts a background goroutine polling HeapAlloc every
// millisecond and returns a stop function yielding the maximum
// observed. Sampling can only undershoot the true peak (it misses
// allocations freed between polls), so the recorded number is a
// conservative floor on resident memory.
func sampleHeapPeak() func() uint64 {
	stop := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		var m runtime.MemStats
		var peak uint64
		ticker := time.NewTicker(time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
				done <- peak
				return
			case <-ticker.C:
				runtime.ReadMemStats(&m)
				if m.HeapAlloc > peak {
					peak = m.HeapAlloc
				}
			}
		}
	}()
	return func() uint64 {
		close(stop)
		return <-done
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
