package main

import (
	"encoding/json"
	"runtime"
	"testing"

	"neatbound/internal/params"
)

func TestMeasureProducesSaneEntry(t *testing.T) {
	pr := params.Params{N: 50, P: 1e-3, Delta: 3, Nu: 0.3}
	e, err := measure(pr, 200, 2, 2, true, 50, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.RoundsPerSec <= 0 || e.NsPerRound <= 0 {
		t.Errorf("non-positive timings: %+v", e)
	}
	if e.HeapPeakBytes == 0 {
		t.Errorf("heap peak not sampled: %+v", e)
	}
	if e.TotalBlocks <= 0 || e.LiveBlocks <= 0 || e.LiveBlocks > e.TotalBlocks+1 {
		t.Errorf("implausible block counts: live %d, total %d", e.LiveBlocks, e.TotalBlocks)
	}
	if e.Cores != runtime.NumCPU() {
		t.Errorf("cores = %d, want the machine's %d — the field must be stamped, not hand-labeled", e.Cores, runtime.NumCPU())
	}
	if e.Procs != runtime.GOMAXPROCS(0) {
		t.Errorf("gomaxprocs = %d, want %d — the usable-parallelism bound must be stamped too", e.Procs, runtime.GOMAXPROCS(0))
	}
	if e.AllocsPerRound < 0 || e.BytesPerRound < 0 {
		t.Errorf("negative alloc metrics: %+v", e)
	}
	e.Label = "test"
	data, err := json.Marshal(file{Benchmark: "BenchmarkSimulationRound", Entries: []entry{e}})
	if err != nil {
		t.Fatal(err)
	}
	var back file
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 || back.Entries[0].Label != "test" {
		t.Errorf("round trip lost the entry: %s", data)
	}
}

func TestMeasureValidation(t *testing.T) {
	pr := params.Params{N: 50, P: 1e-3, Delta: 3, Nu: 0.3}
	if _, err := measure(pr, 0, 1, 0, false, 0, 0, nil); err == nil {
		t.Error("0 rounds accepted")
	}
	if _, err := measure(pr, 10, 0, 0, false, 0, 0, nil); err == nil {
		t.Error("0 iters accepted")
	}
}
