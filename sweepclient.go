package neatbound

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"neatbound/internal/sweepsvc"
)

// This file is the client face of the sweep service (cmd/sweepd): a
// SweepClient submits the same grid/option vocabulary RunSweep takes to
// a running sweepd server, which serves each cell from its persistent
// content-addressed store when it can and computes only the rest. A
// finished job's result is byte-identical to a cold single-process
// RunSweep of the same request (docs/sweepd.md specifies the protocol).

// SweepJobRequest is the wire form of a sweep submission — what
// SweepClient.Submit builds from a SweepGrid plus options, and what
// POST /jobs accepts directly.
type SweepJobRequest = sweepsvc.JobRequest

// SweepJobStatus is a submitted job's observable state: lifecycle
// (queued/running/done/failed/cancelled), the cached/coalesced/computed
// cell breakdown, and per-shard retry counts.
type SweepJobStatus = sweepsvc.JobStatus

// SweepJobEvent is one entry in a job's progress stream — the payload
// of the server's Server-Sent Events. Event types and fields are
// add-only; ignore what you do not know.
type SweepJobEvent = sweepsvc.Event

// Terminal sweep-job states (SweepJobStatus.State).
const (
	SweepJobDone      = sweepsvc.StateDone
	SweepJobFailed    = sweepsvc.StateFailed
	SweepJobCancelled = sweepsvc.StateCancelled
)

// SweepClient talks to a sweepd server. The zero value is not usable;
// build with NewSweepClient.
type SweepClient struct {
	base string
	hc   *http.Client
}

// NewSweepClient returns a client for the sweepd server at baseURL
// (e.g. "http://localhost:8632"). hc may be nil for
// http.DefaultClient; note the events stream holds its connection open
// for the life of a job, so a client with an aggressive Timeout should
// not be shared with Stream/Wait.
func NewSweepClient(baseURL string, hc *http.Client) *SweepClient {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &SweepClient{base: strings.TrimRight(baseURL, "/"), hc: hc}
}

// apiError extracts the server's {"error": "..."} body.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("neatbound: sweepd: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("neatbound: sweepd: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// do runs one JSON request/response round trip.
func (c *SweepClient) do(ctx context.Context, method, path string, body, out any) error {
	var reqBody io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("neatbound: encode sweepd request: %w", err)
		}
		reqBody = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, reqBody)
	if err != nil {
		return fmt.Errorf("neatbound: sweepd request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("neatbound: sweepd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("neatbound: decode sweepd response: %w", err)
		}
	}
	return nil
}

// SweepRequest builds the wire form of a submission from a grid and the
// service-scoped options (the subset of the sweep vocabulary that
// travels as data: rounds, seed, consistency, adversary name, engine
// throughput knobs, replicates). Exported so callers can inspect or
// persist exactly what Submit would send.
func SweepRequest(grid SweepGrid, opts ...Option) (SweepJobRequest, error) {
	o, err := applyOptions(scopeSvc, "SweepClient.Submit", opts)
	if err != nil {
		return SweepJobRequest{}, err
	}
	req := sweepsvc.JobRequest{
		N:                grid.N,
		Delta:            grid.Delta,
		NuValues:         grid.NuValues,
		CValues:          grid.CValues,
		Rounds:           o.rounds,
		Seed:             o.seed,
		T:                o.tee,
		SampleEvery:      o.sampleEvery,
		Replicates:       o.replicates,
		EngineShards:     o.shards,
		FastForward:      o.fastForward,
		CompactEvery:     o.compactEvery,
		CompactMinRetire: o.compactMin,
		CheckerRetention: o.checkerRetain,
	}
	if o.advNameSet {
		req.Adversary = o.advName
		req.ForkDepth = o.advOpts.ForkDepth
	}
	return req, nil
}

// Submit sends a sweep job to the server and returns its initial
// status. The job runs remotely; follow it with Stream or poll Status,
// or just call Wait.
func (c *SweepClient) Submit(ctx context.Context, grid SweepGrid, opts ...Option) (SweepJobStatus, error) {
	req, err := SweepRequest(grid, opts...)
	if err != nil {
		return SweepJobStatus{}, err
	}
	var st SweepJobStatus
	if err := c.do(ctx, http.MethodPost, "/jobs", req, &st); err != nil {
		return SweepJobStatus{}, err
	}
	return st, nil
}

// Status fetches a job's current status.
func (c *SweepClient) Status(ctx context.Context, id string) (SweepJobStatus, error) {
	var st SweepJobStatus
	if err := c.do(ctx, http.MethodGet, "/jobs/"+id, nil, &st); err != nil {
		return SweepJobStatus{}, err
	}
	return st, nil
}

// Cancel requests cancellation of a job (a no-op once terminal) and
// returns its status at the time of the request.
func (c *SweepClient) Cancel(ctx context.Context, id string) (SweepJobStatus, error) {
	var st SweepJobStatus
	if err := c.do(ctx, http.MethodDelete, "/jobs/"+id, nil, &st); err != nil {
		return SweepJobStatus{}, err
	}
	return st, nil
}

// ResultRaw fetches a done job's cell stream as raw interchange bytes —
// byte-identical to MarshalCells over a cold single-process RunSweep of
// the same request. It errors while the job is running or after it
// failed.
func (c *SweepClient) ResultRaw(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, fmt.Errorf("neatbound: sweepd request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("neatbound: sweepd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("neatbound: read sweepd result: %w", err)
	}
	return body, nil
}

// Result fetches and decodes a done job's cells, in the submitted
// grid's ν-major order.
func (c *SweepClient) Result(ctx context.Context, id string) ([]AggregateCell, error) {
	raw, err := c.ResultRaw(ctx, id)
	if err != nil {
		return nil, err
	}
	return UnmarshalCells(bytes.NewReader(raw))
}

// Stream follows a job's Server-Sent Events — the full replay log from
// submission, then live events — calling fn for each until the job is
// terminal (returning nil), ctx is cancelled, or fn returns an error.
func (c *SweepClient) Stream(ctx context.Context, id string, fn func(SweepJobEvent) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("neatbound: sweepd request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("neatbound: sweepd: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0:
			// Blank line terminates one SSE event. The event name line is
			// redundant with the payload's "type" field, so only data is
			// parsed.
			if len(data) == 0 {
				continue
			}
			var ev SweepJobEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("neatbound: decode sweepd event: %w", err)
			}
			data = nil
			if fn != nil {
				if err := fn(ev); err != nil {
					return err
				}
			}
		case bytes.HasPrefix(line, []byte("data: ")):
			data = append(data, bytes.TrimPrefix(line, []byte("data: "))...)
		}
	}
	if err := sc.Err(); err != nil {
		// Surface the caller's cancellation as such, not as a transport
		// error.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return fmt.Errorf("neatbound: sweepd event stream: %w", err)
	}
	return nil
}

// Wait follows the job's event stream until it reaches a terminal
// state, then returns the decoded cells of a done job — or an error
// carrying the server's failure for a failed or cancelled one.
func (c *SweepClient) Wait(ctx context.Context, id string) ([]AggregateCell, error) {
	var last SweepJobStatus
	if err := c.Stream(ctx, id, func(ev SweepJobEvent) error {
		last = ev.Status
		return nil
	}); err != nil {
		return nil, err
	}
	switch last.State {
	case SweepJobDone:
		return c.Result(ctx, id)
	case SweepJobFailed, SweepJobCancelled:
		return nil, fmt.Errorf("neatbound: sweepd job %s %s: %s", id, last.State, last.Error)
	default:
		return nil, fmt.Errorf("neatbound: sweepd event stream for job %s ended in state %q", id, last.State)
	}
}
