package neatbound

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"neatbound/internal/distsweep"
)

// This file is the distributed face of the sweep pipeline: RunSweepDistributed
// partitions a (ν × c) grid into shard specs, dispatches them to workers
// through a ShardExecutor, and reassembles the returned JSONL cell
// streams (docs/interchange.md) into the same ν-major grid RunSweep
// computes — bit for bit, for any partitioning. cmd/sweep's
// -coordinator/-worker modes are thin wrappers over these entry points.

// ShardExecutor launches the workers a distributed sweep dispatches
// shards to. NewInProcessExecutor and NewSubprocessExecutor cover local
// use; implement the interface to run workers somewhere else (ssh,
// kubernetes, a job queue) — each worker just needs the shard protocol
// on a byte stream pair.
type ShardExecutor = distsweep.Executor

// WorkerConn is one live worker from a ShardExecutor's point of view:
// shard-spec lines down In, cell/summary records back on Out.
type WorkerConn = distsweep.WorkerConn

// SweepProgress is the coordinator's report after every committed or
// failed shard.
type SweepProgress = distsweep.Progress

// SweepProgress.Reason values: how the coordinator classifies a shard
// event — a commit replayed from the checkpoint journal, or the cause
// of a reassignment (docs/faults.md).
const (
	ShardResumed = distsweep.ReasonResumed
	ShardStall   = distsweep.ReasonStall
	ShardLaunch  = distsweep.ReasonLaunch
	ShardError   = distsweep.ReasonError
)

// NewInProcessExecutor runs workers as goroutines inside this process,
// wired through in-memory pipes — the full shard protocol without
// subprocesses. jobWorkers bounds each worker's (cell × replicate)
// job-queue parallelism; 0 means GOMAXPROCS, so when launching several
// workers prefer dividing the budget (GOMAXPROCS / worker count), which
// is what RunSweepDistributed's default executor does. The workers
// share the process-wide persistent pool.
func NewInProcessExecutor(jobWorkers int) ShardExecutor {
	return distsweep.InProcess{Opts: distsweep.WorkerOptions{Workers: jobWorkers}}
}

// NewSubprocessExecutor runs each worker as a local subprocess speaking
// the shard protocol on its stdin/stdout: path is the worker binary
// (empty means the current executable) and args must put it in worker
// mode — for the sweep CLI, NewSubprocessExecutor("", "-worker") from
// inside that binary. Cancelling the sweep's ctx kills outstanding
// workers.
func NewSubprocessExecutor(path string, args ...string) ShardExecutor {
	return distsweep.Subprocess{Path: path, Args: args}
}

// ServeSweepWorker runs the worker side of the shard protocol — what
// cmd/sweep -worker executes: read shard-spec lines from r, stream each
// shard's cell records and summary to w, return on EOF. jobWorkers
// bounds this worker's (cell × replicate) job-queue parallelism (0 =
// GOMAXPROCS; a coordinator running several workers on one host should
// divide the budget between them). Shard failures travel in summary
// records; ServeSweepWorker errors only when the transport itself
// breaks or ctx is cancelled.
func ServeSweepWorker(ctx context.Context, r io.Reader, w io.Writer, jobWorkers int) error {
	return distsweep.ServeWorker(ctx, r, w, distsweep.WorkerOptions{Workers: jobWorkers})
}

// SweepShards reports how many shards RunSweepDistributed will cut the
// grid into for the given replicate count, worker count, and target
// shard count (0 = one per worker) — handy for sizing a worker fleet:
// the coordinator never uses more workers than shards, so launching (or
// budgeting for) more wastes them.
func SweepShards(grid SweepGrid, replicates, workers, targetShards int) int {
	if replicates < 1 {
		replicates = 1
	}
	target := targetShards
	if target == 0 {
		target = workers
	}
	return distsweep.PartitionSize(distsweep.Sweep{
		NuValues:   grid.NuValues,
		CValues:    grid.CValues,
		Replicates: replicates,
	}, target)
}

// WithExecutor sets the worker launcher for RunSweepDistributed; the
// default runs workers in-process. RunSweepDistributed only.
func WithExecutor(ex ShardExecutor) Option {
	return Option{name: "WithExecutor", scope: scopeDist,
		apply: func(o *runOptions) { o.executor = ex }}
}

// WithTargetShards sets how many shards the grid is partitioned into
// (0, the default, means one per worker). More shards than workers
// gives finer-grained retry and rebalancing at slightly more protocol
// overhead. RunSweepDistributed only.
func WithTargetShards(n int) Option {
	return Option{name: "WithTargetShards", scope: scopeDist,
		apply: func(o *runOptions) { o.targetShards = n }}
}

// WithShardRetries bounds how often one failed shard is reassigned
// before the sweep gives up (default 2; negative disables retries).
// RunSweepDistributed only.
func WithShardRetries(n int) Option {
	return Option{name: "WithShardRetries", scope: scopeDist,
		apply: func(o *runOptions) { o.shardRetries = n }}
}

// WithSweepProgress reports coordinator progress after every committed
// or failed shard; fn runs serialized on internal goroutines and must
// not block. RunSweepDistributed only.
func WithSweepProgress(fn func(SweepProgress)) Option {
	return Option{name: "WithSweepProgress", scope: scopeDist,
		apply: func(o *runOptions) { o.onSweepProgress = fn }}
}

// WithCheckpointDir makes the sweep durable: every committed shard's
// cell stream is persisted (fsynced before the shard is announced) to a
// shard-checkpoint journal in dir, content-addressed by the sweep's
// semantic key. A sweep killed mid-run can then be continued with
// WithResume against the same directory; docs/faults.md states the full
// contract. RunSweepDistributed only.
func WithCheckpointDir(dir string) Option {
	return Option{name: "WithCheckpointDir", scope: scopeDist,
		apply: func(o *runOptions) { o.checkpointDir = dir }}
}

// WithResume replays the checkpoint journal's committed shards at
// startup and dispatches only the remainder — the reassembled grid is
// byte-identical to a never-interrupted run. The journal must belong to
// this exact sweep (same grid, seed, rounds, adversary, partitioning —
// only throughput knobs may differ); anything else is refused, never
// merged. Requires WithCheckpointDir. RunSweepDistributed only.
func WithResume() Option {
	return Option{name: "WithResume", scope: scopeDist,
		apply: func(o *runOptions) { o.resume = true }}
}

// WithStallTimeout declares an in-flight shard attempt failed when its
// worker makes no record progress for d (wall clock; 0, the default,
// disables stall detection). The attempt is torn down and requeued under
// the retry budget, so one hung worker cannot wedge the sweep.
// RunSweepDistributed only.
func WithStallTimeout(d time.Duration) Option {
	return Option{name: "WithStallTimeout", scope: scopeDist,
		apply: func(o *runOptions) { o.stallTimeout = d }}
}

// WithRespawnBackoff sets the base delay before relaunching a worker
// after a failure; consecutive failures on one worker slot back off
// exponentially with jitter (0, the default, disables backoff). The
// backoff clock is wall time, outside every simulation RNG stream.
// RunSweepDistributed only.
func WithRespawnBackoff(base time.Duration) Option {
	return Option{name: "WithRespawnBackoff", scope: scopeDist,
		apply: func(o *runOptions) { o.respawnBackoff = base }}
}

// RunSweepDistributed executes a (ν × c) grid by partitioning it across
// workers — RunSweep's cross-process sibling. The grid is cut into
// shard specs (contiguous ν-slices, then replicate ranges), dispatched
// to WithWorkers workers launched by the executor, and the returned
// cell streams are reassembled into the exact ν-major grid RunSweep
// would produce on the same inputs: bit-identical for any partitioning,
// because replicate-split cells are refolded in global replicate order
// through the same Welford fold the in-process aggregation uses. A
// shard whose worker dies or errors is discarded wholesale and
// reassigned (WithShardRetries), so no cell is ever double-counted.
//
// The sweep travels as data (shard specs name the adversary), so the
// strategy must be set with WithAdversaryName; WithAdversaryFactory
// cannot cross a process boundary and is rejected. WithWorkers sets the
// worker count (default GOMAXPROCS); WithCellObserver streams each cell
// exactly once as it is fully committed, in completion order.
//
// Cancelling ctx tears the fleet down — subprocess workers are killed,
// in-process workers stop within one engine round — and returns the
// cells committed so far with ctx.Err().
func RunSweepDistributed(ctx context.Context, grid SweepGrid, opts ...Option) ([]AggregateCell, error) {
	o, err := applyOptions(scopeDist, "RunSweepDistributed", opts)
	if err != nil {
		return nil, err
	}
	s := distsweep.Sweep{
		N:                grid.N,
		Delta:            grid.Delta,
		NuValues:         grid.NuValues,
		CValues:          grid.CValues,
		Rounds:           o.rounds,
		Seed:             o.seed,
		T:                o.tee,
		SampleEvery:      o.sampleEvery,
		Replicates:       o.replicates,
		EngineShards:     o.shards,
		FastForward:      o.fastForward,
		CompactEvery:     o.compactEvery,
		CompactMinRetire: o.compactMin,
		CheckerRetention: o.checkerRetain,
		Scenario:         o.scenarioSpec,
	}
	if o.advNameSet {
		s.Adversary = o.advName
		s.ForkDepth = o.advOpts.ForkDepth
	}
	workers := o.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	dopts := distsweep.Options{
		Workers:        workers,
		Shards:         o.targetShards,
		Retries:        o.shardRetries,
		Executor:       o.executor,
		StallTimeout:   o.stallTimeout,
		RespawnBackoff: o.respawnBackoff,
		OnProgress:     o.onSweepProgress,
		OnCell:         o.onCell,
	}
	if o.resume && o.checkpointDir == "" {
		return nil, fmt.Errorf("neatbound: WithResume requires WithCheckpointDir")
	}
	if o.checkpointDir != "" {
		cp, err := distsweep.OpenCheckpoint(o.checkpointDir)
		if err != nil {
			return nil, err
		}
		defer cp.Close()
		dopts.Checkpoint = cp
		dopts.Resume = o.resume
	}
	return distsweep.Run(ctx, s, dopts)
}
