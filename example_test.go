package neatbound_test

import (
	"fmt"
	"log"

	"neatbound"
)

// The headline result: the c each analysis requires at ν = 0.3.
func ExampleNeatBoundC() {
	c, err := neatbound.NeatBoundC(0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consistency holds for c slightly above %.4f\n", c)
	// Output:
	// consistency holds for c slightly above 1.6523
}

// Inverting the Figure-1 curves at c = 2.
func ExampleNeatBoundNuMax() {
	neat, _ := neatbound.NeatBoundNuMax(2)
	pss, _ := neatbound.PSSConsistencyNuMax(2)
	attack, _ := neatbound.PSSAttackNuMin(2)
	fmt.Printf("neat νmax %.4f, PSS νmax %.4f, attack νmin %.4f\n", neat, pss, attack)
	// Output:
	// neat νmax 0.3410, PSS νmax 0.0000, attack νmin 0.4384
}

// Classifying a parameterization inside the paper's improvement region.
func ExampleClassify() {
	pr, err := neatbound.ParamsFromC(100000, 1000, 0.3, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	v, err := neatbound.Classify(pr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v.Certified, v.PSSCertified, v.AttackApplies)
	// Output:
	// true false false
}

// How many confirmations a merchant needs against a 25% adversary.
func ExampleConfirmationsForRisk() {
	t, err := neatbound.ConfirmationsForRisk(0.25, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d confirmations push the fork risk below 0.1%%\n", t)
	// Output:
	// 7 confirmations push the fork risk below 0.1%
}

// A complete simulation with consistency verification.
func ExampleSimulate() {
	pr, err := neatbound.ParamsFromC(20, 2, 0.25, 12.5)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := neatbound.Simulate(neatbound.SimulationConfig{
		Params: pr, Rounds: 20000, Seed: 1, T: 8,
		Adversary: neatbound.NewMaxDelayAdversary(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("violations at T=8: %d, Lemma-1 margin positive: %v\n",
		rep.Violations, rep.Ledger.Margin() > 0)
	// Output:
	// violations at T=8: 0, Lemma-1 margin positive: true
}
