package neatbound

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"neatbound/internal/adversary"
	"neatbound/internal/consistency"
	"neatbound/internal/engine"
	"neatbound/internal/metrics"
	"neatbound/internal/pool"
	"neatbound/internal/scenario"
	"neatbound/internal/sweep"
)

// This file is the v2 execution API: one context-aware Runner
// (Run) and one option-driven sweep pipeline (RunSweep) that the
// consistency checker, metric recorders, trace writers, and user hooks
// all plug into as composable observers. The legacy entry points
// (Simulate, Sweep, SweepReplicated, SweepReplicatedStream) are thin
// shims over this path.

// EngineVersion is the engine-semantics version (sweep.EngineVersion):
// it changes only when a code change alters simulation results for some
// configuration — never for bit-identical refactors. It is stamped into
// every interchange cell record ("engine_version"), into benchmark
// entries (cmd/benchjson), and into the sweepd store's cell content
// addresses, so results are only pooled or deduplicated across
// identical semantics.
const EngineVersion = sweep.EngineVersion

// Engine is the protocol execution engine observers receive; it exposes
// honest views (DistinctTips, PlayerTip, MaxHonestHeight, …) for
// inspection during a run.
type Engine = engine.Engine

// RoundRecord is one executed round's summary, streamed to observers.
type RoundRecord = engine.RoundRecord

// RunResult is the engine-level outcome handed to OnFinish hooks.
type RunResult = engine.Result

// Observer receives every executed round; implement OnFinish
// (FinishObserver) to also finalize after the last round. Attach with
// WithObserver; the consistency checker and metric recorders Run
// installs are observers on the same stack.
type Observer = engine.Observer

// FinishObserver is an Observer with an end-of-run hook.
type FinishObserver = engine.FinishObserver

// ObserverFunc adapts a plain function to Observer.
type ObserverFunc = engine.ObserverFunc

// Observers composes observers into one (nils dropped, nested stacks
// flattened).
func Observers(obs ...Observer) Observer { return engine.Observers(obs...) }

// AutoShards, passed to WithShards (or set by WithAutoShards), picks the
// engine's delivery-phase parallelism from GOMAXPROCS and the player
// count — serial below a measured player threshold, where per-round
// worker spawn overhead dominates. Any shard count is bit-identical, so
// the choice affects only throughput.
const AutoShards = engine.AutoShards

// AdversaryOpts carries the strategy-specific knobs NewAdversaryByName
// accepts.
type AdversaryOpts struct {
	// ForkDepth is the private-mining strategy's minimum published fork
	// depth; 0 means the default of 4. Other strategies ignore it.
	ForkDepth int
}

// AdversaryNames lists the strategy names NewAdversaryByName accepts.
func AdversaryNames() []string { return adversary.Names() }

// NewAdversaryByName builds a strategy from its experiment/CLI name —
// the one switch (adversary.ByName) shared by cmd/simulate, cmd/sweep,
// cmd/report, and the distributed sweep worker's shard specs.
func NewAdversaryByName(name string, opts AdversaryOpts) (Adversary, error) {
	adv, err := adversary.ByName(name, opts.ForkDepth)
	if err != nil {
		return nil, fmt.Errorf("neatbound: %w", err)
	}
	return adv, nil
}

// Progress is the periodic update WithProgress delivers.
type Progress struct {
	// Round is the last executed round; Rounds the configured total.
	Round, Rounds int
}

// runOptions collects what the functional options configure; Run and
// RunSweep each read the subset that applies to them.
type runOptions struct {
	rounds        int
	seed          uint64
	adversary     Adversary
	advFactory    func() Adversary
	advName       string
	advNameSet    bool
	advOpts       AdversaryOpts
	shards        int
	tee           int
	sampleEvery   int
	observers     []Observer
	progressEvery int
	progressFn    func(Progress)
	traceW        io.Writer
	nuSchedule    func(round int) float64
	fastForward   bool
	compactEvery  int
	compactMin    int
	checkerRetain int
	replicates    int
	workers       int
	onCell        func(AggregateCell)
	scenarioSpec  *scenario.Spec

	// distributed-sweep extras (distributed.go)
	executor        ShardExecutor
	targetShards    int
	shardRetries    int
	onSweepProgress func(SweepProgress)
	checkpointDir   string
	resume          bool
	stallTimeout    time.Duration
	respawnBackoff  time.Duration
}

// optionScope marks which entry points accept an option.
type optionScope uint8

const (
	scopeRun optionScope = 1 << iota
	scopeSweep
	scopeDist
	// scopeSvc marks options a SweepClient submission can carry to a
	// sweepd server (sweepclient.go) — the subset of the sweep
	// vocabulary that travels as data.
	scopeSvc
)

// Option configures Run and RunSweep. Each constructor documents which
// entry points accept it; passing an option where it does not apply is
// an error, not a silent no-op.
type Option struct {
	name  string
	scope optionScope
	apply func(*runOptions)
}

// applyOptions folds opts into a fresh runOptions, rejecting options
// outside scope.
func applyOptions(scope optionScope, entry string, opts []Option) (*runOptions, error) {
	o := &runOptions{replicates: 1}
	for _, opt := range opts {
		if opt.apply == nil {
			return nil, fmt.Errorf("neatbound: zero Option value passed to %s", entry)
		}
		if opt.scope&scope == 0 {
			return nil, fmt.Errorf("neatbound: option %s does not apply to %s", opt.name, entry)
		}
		opt.apply(o)
	}
	return o, nil
}

// WithRounds sets the execution length (per cell, for sweeps). Required:
// there is no default.
func WithRounds(rounds int) Option {
	return Option{name: "WithRounds", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.rounds = rounds }}
}

// WithSeed sets the base random seed (0 is a valid seed and the
// default); identical configurations replay identically.
func WithSeed(seed uint64) Option {
	return Option{name: "WithSeed", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.seed = seed }}
}

// WithAdversary sets the run's strategy; nil (the default) runs the
// passive baseline. Run only — sweeps need a fresh strategy per cell,
// so they take WithAdversaryFactory or WithAdversaryName.
func WithAdversary(adv Adversary) Option {
	return Option{name: "WithAdversary", scope: scopeRun,
		apply: func(o *runOptions) { o.adversary = adv }}
}

// WithAdversaryFactory sets the per-cell strategy factory for sweeps
// (strategies are stateful, so each cell builds its own).
func WithAdversaryFactory(factory func() Adversary) Option {
	return Option{name: "WithAdversaryFactory", scope: scopeSweep,
		apply: func(o *runOptions) { o.advFactory = factory }}
}

// WithAdversaryName selects the strategy by its NewAdversaryByName name;
// it works for both Run (one instance) and RunSweep (one per cell).
func WithAdversaryName(name string, opts AdversaryOpts) Option {
	return Option{name: "WithAdversaryName", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.advName, o.advOpts, o.advNameSet = name, opts, true }}
}

// WithShards sets the engine's delivery-phase parallelism (see
// engine sharding in SimulationConfig.Shards): 0 or 1 serial, P > 1
// sharded, AutoShards picks from GOMAXPROCS and the player count. Any
// value is bit-identical.
func WithShards(shards int) Option {
	return Option{name: "WithShards", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.shards = shards }}
}

// WithAutoShards is WithShards(AutoShards).
func WithAutoShards() Option {
	return Option{name: "WithAutoShards", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.shards = AutoShards }}
}

// WithConsistency sets Definition 1's chop parameter T and the checker's
// snapshot interval (sampleEvery ≤ 0 picks rounds/50, min 1). Without
// this option the check runs at T = 0 with the default interval.
func WithConsistency(tee, sampleEvery int) Option {
	return Option{name: "WithConsistency", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.tee, o.sampleEvery = tee, sampleEvery }}
}

// WithObserver attaches observers to the run's stack, after the built-in
// checker and recorders. Run only.
func WithObserver(obs ...Observer) Option {
	return Option{name: "WithObserver", scope: scopeRun,
		apply: func(o *runOptions) { o.observers = append(o.observers, obs...) }}
}

// WithProgress calls fn every `every` rounds (and on the final round)
// with the run's progress. Run only.
func WithProgress(every int, fn func(Progress)) Option {
	return Option{name: "WithProgress", scope: scopeRun,
		apply: func(o *runOptions) { o.progressEvery, o.progressFn = every, fn }}
}

// WithTraceJSON streams every RoundRecord as one JSON line to w — the
// round-trace interchange for external analysis. Run only.
func WithTraceJSON(w io.Writer) Option {
	return Option{name: "WithTraceJSON", scope: scopeRun,
		apply: func(o *runOptions) { o.traceW = w }}
}

// WithNuSchedule makes corruption adaptive: each round the adversary
// controls round(ν(t)·N) players (see the engine's adaptive-corruption
// model). Run only.
func WithNuSchedule(fn func(round int) float64) Option {
	return Option{name: "WithNuSchedule", scope: scopeRun,
		apply: func(o *runOptions) { o.nuSchedule = fn }}
}

// WithFastForward enables the engine's event-driven round skipping
// (engine.Config.FastForward): quiet rounds — nothing due on the
// network, zero mining on both sides, adversary quiescent — are crossed
// in O(1) instead of walking every player, which in sparse-mining
// regimes (np ≪ 1) turns the round loop's cost from O(rounds) into
// O(events). The flag never changes results: the fast path consumes RNG
// draws in the step engine's exact order and emits every skipped
// round's record, and the engine silently falls back to stepping
// whenever a precondition fails (see docs/fastforward.md).
func WithFastForward() Option {
	return Option{name: "WithFastForward", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.fastForward = true }}
}

// WithCompaction enables the engine's epoch-based arena compaction
// (engine.Config.CompactEvery): every `every` rounds the engine retires
// all blocks strictly below the retention watermark — the common
// ancestor of every live honest view, every adversary- and
// observer-retained block, and every in-flight message — bounding
// resident memory on long runs instead of growing with every block
// ever mined. minRetire is the minimum ID span an epoch must reclaim
// to pay for the rebase (0 picks the engine default). Compaction is
// bit-identical to running without it; see docs/memory.md.
//
// The built-in consistency checker retains its full snapshot history by
// default, which pins the watermark near genesis and keeps compaction
// inert — combine with WithCheckerRetention to let the watermark
// advance.
func WithCompaction(every, minRetire int) Option {
	return Option{name: "WithCompaction", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.compactEvery, o.compactMin = every, minRetire }}
}

// WithCheckerRetention bounds the consistency checker's snapshot
// history to the most recent keep samples
// (consistency.Checker.SetRetention); 0, the default, retains the whole
// run. A bounded window is what lets WithCompaction reclaim memory, at
// the cost of evaluating Definition 1 over the retained window only.
func WithCheckerRetention(keep int) Option {
	return Option{name: "WithCheckerRetention", scope: scopeRun | scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.checkerRetain = keep }}
}

// ScenarioSpec is a scenario-layer description (internal/scenario): a
// stochastic or partitioned delay policy, a churn plan, and/or a skewed
// mining-power profile, all JSON-portable. Build one with ParseScenario
// (preset name or JSON literal) and pass it via WithScenario.
type ScenarioSpec = scenario.Spec

// ScenarioNames lists the built-in scenario preset names ParseScenario
// accepts.
func ScenarioNames() []string { return scenario.Names() }

// ParseScenario resolves a CLI-style scenario argument: "" returns
// (nil, nil) — the default model; a "{"-prefixed string parses as a
// JSON ScenarioSpec; anything else must be a preset name
// (ScenarioNames).
func ParseScenario(arg string) (*ScenarioSpec, error) {
	spec, err := scenario.Parse(arg)
	if err != nil {
		return nil, fmt.Errorf("neatbound: %w", err)
	}
	return spec, nil
}

// WithScenario applies the scenario layer to the run (or every sweep
// cell): the spec's delay policy replaces the honest Δ-bound broadcast
// schedule — always within the Δ envelope of the model — and its
// churn/power sections configure scheduled player leave epochs and
// per-player mining weights. Scenarios disarm FastForward (the engine
// falls back to stepping; see docs/scenarios.md) and are incompatible
// with WithNuSchedule. Nil is the default model. Run, RunSweep and
// RunSweepDistributed — not sweepd submissions: the service's
// content-addressed store keys do not cover scenarios.
func WithScenario(spec *ScenarioSpec) Option {
	return Option{name: "WithScenario", scope: scopeRun | scopeSweep | scopeDist,
		apply: func(o *runOptions) { o.scenarioSpec = spec }}
}

// WithReplicates runs every sweep cell r times with independent seeds
// and aggregates (default 1). RunSweep and RunSweepDistributed.
func WithReplicates(r int) Option {
	return Option{name: "WithReplicates", scope: scopeSweep | scopeDist | scopeSvc,
		apply: func(o *runOptions) { o.replicates = r }}
}

// WithWorkers sizes the sweep's parallelism: for RunSweep the
// (cell × replicate) job-queue width, for RunSweepDistributed the
// number of workers the executor launches (0, the default, means
// GOMAXPROCS either way).
func WithWorkers(workers int) Option {
	return Option{name: "WithWorkers", scope: scopeSweep | scopeDist,
		apply: func(o *runOptions) { o.workers = workers }}
}

// WithCellObserver streams every finished AggregateCell to fn exactly
// once, as it completes, while the rest of the grid is still running —
// in completion order, serialized. Under RunSweep fn runs on the
// caller's goroutine; under RunSweepDistributed it runs on an internal
// coordinator goroutine and must not block.
func WithCellObserver(fn func(AggregateCell)) Option {
	return Option{name: "WithCellObserver", scope: scopeSweep | scopeDist,
		apply: func(o *runOptions) { o.onCell = fn }}
}

// RunReport is Run's outcome: the full SimulationReport plus the
// partial-run flags a cancellable execution needs.
type RunReport struct {
	SimulationReport
	// Partial is set when ctx was cancelled mid-run; every report field
	// then covers only the rounds actually executed.
	Partial bool
	// RoundsExecuted counts executed rounds (the configured total unless
	// Partial).
	RoundsExecuted int
}

// Run executes the protocol under pr with the given options and returns
// the full consistency report — the v2 replacement for Simulate. The
// consistency checker, the Lemma-1 ledger recorder, any trace writer or
// progress hook, and the observers of WithObserver all run side by side
// in one pass over the round stream.
//
// Cancelling ctx stops the run before the next round: Run then returns
// the report over the rounds executed so far, with Partial set, together
// with ctx.Err().
func Run(ctx context.Context, pr Params, opts ...Option) (*RunReport, error) {
	o, err := applyOptions(scopeRun, "Run", opts)
	if err != nil {
		return nil, err
	}
	if err := pr.Validate(); err != nil {
		return nil, fmt.Errorf("neatbound: %w", err)
	}
	adv := o.adversary
	if o.advNameSet {
		if adv != nil {
			return nil, fmt.Errorf("neatbound: WithAdversary and WithAdversaryName are mutually exclusive")
		}
		if adv, err = NewAdversaryByName(o.advName, o.advOpts); err != nil {
			return nil, err
		}
	}
	sampleEvery := o.sampleEvery
	if sampleEvery <= 0 {
		sampleEvery = o.rounds / 50
		if sampleEvery < 1 {
			sampleEvery = 1
		}
	}
	checker, err := consistency.NewChecker(o.tee, sampleEvery)
	if err != nil {
		return nil, err
	}
	// The post-run pairwise consistency scan shares the same persistent
	// worker pool the engine's delivery phase and broadcast fan-out use.
	checker.UsePool(pool.Default())
	checker.SetRetention(o.checkerRetain)
	ledger, err := consistency.NewLedgerRecorder(pr.Delta)
	if err != nil {
		return nil, err
	}
	stack := []engine.Observer{checker, ledger}
	if o.traceW != nil {
		stack = append(stack, engine.NewTraceWriter(o.traceW))
	}
	if o.progressFn != nil {
		every := o.progressEvery
		if every < 1 {
			every = 1
		}
		total := o.rounds
		fn := o.progressFn
		stack = append(stack, ObserverFunc(func(_ *Engine, rec RoundRecord) {
			if rec.Round%every == 0 || rec.Round == total {
				fn(Progress{Round: rec.Round, Rounds: total})
			}
		}))
	}
	stack = append(stack, o.observers...)
	ecfg := engine.Config{
		Params:           pr,
		Rounds:           o.rounds,
		Seed:             o.seed,
		Adversary:        adv,
		Observer:         engine.Observers(stack...),
		NuSchedule:       o.nuSchedule,
		Shards:           o.shards,
		FastForward:      o.fastForward,
		CompactEvery:     o.compactEvery,
		CompactMinRetire: o.compactMin,
	}
	if o.scenarioSpec != nil {
		compiled, err := o.scenarioSpec.Compile(pr)
		if err != nil {
			return nil, fmt.Errorf("neatbound: %w", err)
		}
		if compiled.Policy != nil {
			if ecfg.Adversary == nil {
				ecfg.Adversary = engine.PassiveAdversary{}
			}
			ecfg.Adversary = scenario.Wrap(ecfg.Adversary, compiled.Policy)
		}
		ecfg.Churn = compiled.Churn
		ecfg.MiningWeights = compiled.Weights
	}
	e, err := engine.New(ecfg)
	if err != nil {
		return nil, err
	}
	res, runErr := e.RunContext(ctx)
	if res == nil {
		return nil, runErr
	}
	rep, err := assembleReport(pr, res, checker, ledger)
	if err != nil {
		return nil, err
	}
	return rep, runErr
}

// assembleReport builds the RunReport from an executed (possibly
// partial) result — field for field what the legacy Simulate computed,
// so Run reproduces its reports bit-identically. Every field, the
// Eq. 26/27 predictions included, covers the rounds actually executed
// (identical to the configured total on a complete run).
func assembleReport(pr Params, res *engine.Result, checker *consistency.Checker, ledger *consistency.LedgerRecorder) (*RunReport, error) {
	viols, err := checker.Check(res.Tree)
	if err != nil {
		return nil, err
	}
	maxDepth, err := checker.MaxForkDepth(res.Tree)
	if err != nil {
		return nil, err
	}
	tree := res.Tree
	quality, err := metrics.ChainQuality(tree, tree.Best(), 0)
	if err != nil {
		return nil, err
	}
	rounds := len(res.Records)
	return &RunReport{
		SimulationReport: SimulationReport{
			Violations:           len(viols),
			ViolationList:        viols,
			MaxForkDepth:         maxDepth,
			Ledger:               ledger.Accounting(),
			PredictedConvergence: float64(rounds) * pr.ConvergenceOpportunityRate(),
			PredictedAdversary:   float64(rounds) * pr.AdversaryBlockRate(),
			HonestBlocks:         res.HonestBlocks,
			AdversaryBlocks:      res.AdversaryBlocks,
			ChainGrowthRate:      metrics.ChainGrowthRate(res.Records),
			ChainQuality:         quality,
			MainChainShare:       metrics.MainChainShare(tree),
			TotalBlocks:          tree.Len() - 1,
			LiveBlocks:           tree.LiveBlocks(),
		},
		Partial:        res.Partial,
		RoundsExecuted: len(res.Records),
	}, nil
}

// SweepGrid spans the (ν × c) parameter grid of one sweep; every
// (ν, c) pair is a cell executed at the shared n and Δ.
type SweepGrid struct {
	// N is the miner count used in every cell.
	N int
	// Delta is the network delay bound used in every cell.
	Delta int
	// NuValues and CValues span the grid.
	NuValues, CValues []float64
}

// RunSweep executes a (ν × c) grid on the job-queue pipeline and
// aggregates each cell over its replicates — the one option-driven
// entry point replacing Sweep, SweepReplicated and
// SweepReplicatedStream. Attach WithCellObserver to stream finished
// cells while the grid is still running; the streamed lines marshal via
// MarshalCells into the cross-process interchange that MergeCellStreams
// reassembles.
//
// Cancelling ctx stops the grid promptly: cells already aggregated are
// returned (unfinished slots stay zero-valued) together with ctx.Err().
func RunSweep(ctx context.Context, grid SweepGrid, opts ...Option) ([]AggregateCell, error) {
	o, err := applyOptions(scopeSweep, "RunSweep", opts)
	if err != nil {
		return nil, err
	}
	factory := o.advFactory
	if o.advNameSet {
		if factory != nil {
			return nil, fmt.Errorf("neatbound: WithAdversaryFactory and WithAdversaryName are mutually exclusive")
		}
		// Validate the name once up front; the per-cell factory can then
		// not fail.
		if _, err := NewAdversaryByName(o.advName, o.advOpts); err != nil {
			return nil, err
		}
		name, advOpts := o.advName, o.advOpts
		factory = func() Adversary {
			adv, err := NewAdversaryByName(name, advOpts)
			if err != nil {
				panic(err) // unreachable: validated above
			}
			return adv
		}
	}
	return sweep.RunGrid(ctx, sweep.Config{
		N:                grid.N,
		Delta:            grid.Delta,
		NuValues:         grid.NuValues,
		CValues:          grid.CValues,
		Rounds:           o.rounds,
		Seed:             o.seed,
		T:                o.tee,
		SampleEvery:      o.sampleEvery,
		NewAdversary:     factory,
		Workers:          o.workers,
		Shards:           o.shards,
		FastForward:      o.fastForward,
		CompactEvery:     o.compactEvery,
		CompactMinRetire: o.compactMin,
		CheckerRetention: o.checkerRetain,
		Scenario:         o.scenarioSpec,
	}, o.replicates, o.onCell)
}

// MarshalCells writes one JSON line per cell to w — the AggregateCell
// interchange cmd/sweep -json emits and cross-process sweep sharding
// exchanges.
func MarshalCells(w io.Writer, cells []AggregateCell) error {
	return sweep.MarshalCells(w, cells)
}

// MarshalCell encodes one cell onto enc in the interchange form — the
// streaming building block cmd/sweep -json uses per finished cell.
func MarshalCell(enc *json.Encoder, cell AggregateCell) error {
	return sweep.MarshalCell(enc, cell)
}

// UnmarshalCells reads a JSON-lines AggregateCell stream back (the
// MarshalCells format).
func UnmarshalCells(r io.Reader) ([]AggregateCell, error) {
	return sweep.UnmarshalCells(r)
}

// MergeCellStreams folds several JSON-lines AggregateCell streams — the
// outputs of sweep shards run on different machines, each covering a
// partition of the grid — into one slice sorted ascending by (ν, c).
// Duplicate (ν, c) cells merge exactly: replicate and violation counts
// add, the Wilson interval is recomputed, and the summaries combine via
// the parallel Welford update.
func MergeCellStreams(streams ...io.Reader) ([]AggregateCell, error) {
	return sweep.MergeCellStreams(streams...)
}
