package neatbound

import (
	"fmt"
	"math"
	"testing"

	"neatbound/internal/adversary"
	"neatbound/internal/blockchain"
	"neatbound/internal/engine"
	"neatbound/internal/params"
	"neatbound/internal/pool"
)

// These golden hashes pin the engine's observable behavior — the exact
// RoundRecord stream, final honest tips, block counters, and tree shape —
// for fixed seeds across every adversary class. They were captured on the
// original map-based simulation data path (map Tree, per-round O(players)
// statistics scans, map-of-maps network inbox); the flat-arena /
// incremental-statistics / ring-buffer refactor and any future hot-path
// work must reproduce them bit-identically: a changed hash means changed
// simulation semantics (or a changed RNG draw order), not just a perf
// regression.

// goldenCase is one pinned execution: a config plus, optionally, the
// literal proof-of-work path (WithOracleMining) in place of binomial
// sampling.
type goldenCase struct {
	cfg       engine.Config
	oracle    bool
	oracleKey uint64
}

// traceHash runs the case and folds every per-round record plus the
// final state into an FNV-1a hash. The record stream is tapped through
// the legacy Config.OnRound hook; observerTraceHash taps the same
// stream through the Observer stack instead.
func traceHash(t *testing.T, gc goldenCase) uint64 {
	return traceHashVia(t, gc, false)
}

// observerTraceHash is traceHash with the mixer riding Config.Observer
// as one member of a MultiObserver — pinning that the observer
// multiplexer sees the identical record stream.
func observerTraceHash(t *testing.T, gc goldenCase) uint64 {
	return traceHashVia(t, gc, true)
}

func traceHashVia(t *testing.T, gc goldenCase, viaObserver bool) uint64 {
	cfg := gc.cfg
	t.Helper()
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		// Mix each of the 8 bytes so high bits participate.
		for i := 0; i < 64; i += 8 {
			h = (h ^ (v >> i & 0xff)) * prime
		}
	}
	mixRec := func(rec engine.RoundRecord) {
		mix(uint64(rec.Round))
		mix(math.Float64bits(rec.Nu))
		mix(uint64(rec.HonestMined))
		mix(uint64(rec.AdversaryMined))
		mix(uint64(rec.MaxHonestHeight))
		mix(uint64(rec.MinHonestHeight))
		mix(uint64(rec.DistinctTips))
	}
	if viaObserver {
		// Ride a real multiplexer: the mixer plus a second observer, so
		// the fan-out path itself is on the pinned execution.
		rounds := 0
		cfg.Observer = engine.Observers(
			engine.ObserverFunc(func(_ *engine.Engine, rec engine.RoundRecord) { mixRec(rec) }),
			engine.ObserverFunc(func(_ *engine.Engine, _ engine.RoundRecord) { rounds++ }),
		)
	} else {
		prev := cfg.OnRound
		cfg.OnRound = func(e *engine.Engine, rec engine.RoundRecord) {
			mixRec(rec)
			if prev != nil {
				prev(e, rec)
			}
		}
	}
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gc.oracle {
		if err := e.WithOracleMining(gc.oracleKey); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, tip := range res.FinalTips {
		mix(uint64(tip))
	}
	mix(uint64(res.HonestBlocks))
	mix(uint64(res.AdversaryBlocks))
	mix(uint64(res.Tree.Len()))
	mix(uint64(res.Tree.Best()))
	mix(uint64(res.Tree.MaxHeight()))
	return h
}

// goldenCases spans the behavior space: every adversary class, the
// Δ-delay scheduling extremes, adaptive corruption (the honest-set
// resizing path), and the literal proof-of-work oracle path — alone and
// combined with adaptive corruption, pinning that oracle queries cover
// exactly the honest prefix of the player range.
func goldenCases(t *testing.T) map[string]goldenCase {
	t.Helper()
	base := params.Params{N: 40, P: 0.005, Delta: 4, Nu: 0.3}
	deep := params.Params{N: 40, P: 0.005, Delta: 8, Nu: 0.45}
	oscillate := func(round int) float64 {
		if (round/100)%2 == 0 {
			return 0.45
		}
		return 0.1
	}
	switcher, err := adversary.NewSwitcher(300,
		adversary.MaxDelay{},
		&adversary.PrivateMining{MinForkDepth: 3},
		&adversary.Balance{},
	)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]goldenCase{
		"passive": {cfg: engine.Config{Params: base, Rounds: 3000, Seed: 1}},
		"max-delay": {cfg: engine.Config{Params: base, Rounds: 3000, Seed: 2,
			Adversary: adversary.MaxDelay{}}},
		"private-mining": {cfg: engine.Config{Params: deep, Rounds: 3000, Seed: 3,
			Adversary: &adversary.PrivateMining{MinForkDepth: 3}}},
		"switcher": {cfg: engine.Config{Params: deep, Rounds: 3000, Seed: 4,
			Adversary: switcher}},
		"selfish": {cfg: engine.Config{Params: base, Rounds: 3000, Seed: 5,
			Adversary: &adversary.Selfish{}}},
		"balance": {cfg: engine.Config{Params: deep, Rounds: 3000, Seed: 6,
			Adversary: &adversary.Balance{}}},
		"adaptive-nu": {cfg: engine.Config{Params: base, Rounds: 3000, Seed: 7,
			NuSchedule: oscillate}},
		"oracle": {cfg: engine.Config{Params: base, Rounds: 3000, Seed: 8},
			oracle: true, oracleKey: 99},
		"oracle-adaptive-nu": {cfg: engine.Config{Params: base, Rounds: 3000, Seed: 9,
			NuSchedule: oscillate},
			oracle: true, oracleKey: 99},
	}
}

// goldenTraces holds the expected hash per case, captured at the
// map-based baseline (see file comment). Regenerate by running
// TestGoldenTraces with -v and copying the logged values — but only
// after convincing yourself the semantic change is intended.
var goldenTraces = map[string]uint64{
	"passive":        0x75b8c8ca674e4dd0,
	"max-delay":      0xf05ae2ef03d7038,
	"private-mining": 0x3396014b2c3d259f,
	"switcher":       0x69e41e22c3a570eb,
	"selfish":        0x36c9618eb041f981,
	"balance":        0x4519a465cff07bca,
	"adaptive-nu":    0xbb76c7eddc274146,
	// The oracle cases were captured after the honest-prefix fix (oracle
	// queries cover e.tips[:honest], matching the statistical path and
	// oracle.go's contract); they pin that semantics as canonical.
	"oracle":             0x4a2c773edc09729b,
	"oracle-adaptive-nu": 0xce628509774a384a,
}

func TestGoldenTraces(t *testing.T) {
	for name, cfg := range goldenCases(t) {
		t.Run(name, func(t *testing.T) {
			got := traceHash(t, cfg)
			t.Logf("trace hash %q: %#x", name, got)
			want, ok := goldenTraces[name]
			if !ok {
				t.Fatalf("no golden hash recorded for %q", name)
			}
			if got != want {
				t.Errorf("trace hash = %#x, want %#x — the simulation is no longer bit-identical for fixed seeds", got, want)
			}
		})
	}
}

// TestGoldenTracesSharded pins the sharded-execution determinism
// contract (see engine.Config): for every golden configuration, running
// the delivery phase on P ∈ {1, 2, 4, 7} worker shards must reproduce
// the serial engine's RoundRecord stream, final tips, block counters and
// tree shape bit for bit — the same hashes the serial cases pin. P = 7
// deliberately does not divide any player count, exercising uneven
// shard boundaries.
func TestGoldenTracesSharded(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 7} {
		for name, gc := range goldenCases(t) {
			gc := gc
			gc.cfg.Shards = shards
			t.Run(fmt.Sprintf("%s/P=%d", name, shards), func(t *testing.T) {
				got := traceHash(t, gc)
				want := goldenTraces[name]
				if got != want {
					t.Errorf("sharded trace hash = %#x, want %#x — P=%d diverged from the serial engine", got, want, shards)
				}
			})
		}
	}
}

// TestGoldenTracesFastForward pins the event-driven fast-forward path
// (engine.Config.FastForward) to the exact golden hashes of the step
// engine: for every golden configuration, serial and sharded, enabling
// the flag must reproduce the identical RoundRecord stream (no gaps —
// skipped rounds still emit records), final tips, block counters and
// tree shape. The adaptive-nu and oracle cases exercise the silent
// fallback: their preconditions disarm the fast path, and the flag must
// still change nothing.
func TestGoldenTracesFastForward(t *testing.T) {
	for _, shards := range []int{0, 2, 7} {
		for name, gc := range goldenCases(t) {
			gc := gc
			gc.cfg.Shards = shards
			gc.cfg.FastForward = true
			t.Run(fmt.Sprintf("%s/P=%d", name, shards), func(t *testing.T) {
				got := traceHash(t, gc)
				want := goldenTraces[name]
				if got != want {
					t.Errorf("fast-forward trace hash = %#x, want %#x — the event-driven path diverged from the step engine", got, want)
				}
			})
		}
	}
}

// TestGoldenTracesCompacted pins that epoch-based arena compaction
// (engine.Config.CompactEvery) is pure representation: for every golden
// configuration — serial and sharded, and again under fast-forward —
// running with an aggressive compaction schedule (every 200 rounds,
// minimum retirement 1, so epochs fire constantly instead of waiting
// for the default spans) must reproduce the exact golden hashes. The
// trace mixes Tree.Len(), Best() and MaxHeight(), all of which must be
// invariant under retirement; a changed hash means compaction altered
// observable simulation state.
func TestGoldenTracesCompacted(t *testing.T) {
	for _, variant := range []struct {
		name   string
		shards int
		ff     bool
	}{
		{"serial", 0, false},
		{"P=2", 2, false},
		{"P=7", 7, false},
		{"fast-forward", 0, true},
	} {
		for name, gc := range goldenCases(t) {
			gc := gc
			gc.cfg.Shards = variant.shards
			gc.cfg.FastForward = variant.ff
			gc.cfg.CompactEvery = 200
			gc.cfg.CompactMinRetire = 1
			t.Run(fmt.Sprintf("%s/%s", name, variant.name), func(t *testing.T) {
				got := traceHash(t, gc)
				want := goldenTraces[name]
				if got != want {
					t.Errorf("compacted trace hash = %#x, want %#x — compaction changed simulation semantics", got, want)
				}
			})
		}
	}
}

// TestGoldenCompactionRetires guards the compaction goldens against
// vacuity: under the same aggressive schedule, at least the max-delay
// configuration must actually retire history (every strategy here
// implements engine.Retainer and no observer holds block references, so
// the watermark is free to advance past genesis).
func TestGoldenCompactionRetires(t *testing.T) {
	gc := goldenCases(t)["max-delay"]
	gc.cfg.CompactEvery = 200
	gc.cfg.CompactMinRetire = 1
	e, err := engine.New(gc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree.Base() == blockchain.GenesisID {
		t.Fatal("arena base still at genesis — compaction never fired and the golden compaction traces are vacuous")
	}
	if live, total := res.Tree.LiveBlocks(), res.Tree.Len(); live >= total {
		t.Errorf("live blocks %d not below ever-added %d despite base %d", live, total, res.Tree.Base())
	}
}

// TestGoldenTracesPooledShared pins the persistent-pool runtime against
// the golden hashes: all nine golden configurations run sharded on ONE
// injected worker pool, consecutively — the delivery barrier is reused
// across engines (the sweep's usage pattern) — and every trace must
// still reproduce the serial hashes bit for bit. The pool is
// deliberately smaller than the shard count on P=7, so tasks queue on
// the claim counter rather than mapping 1:1 onto workers.
func TestGoldenTracesPooledShared(t *testing.T) {
	shared := pool.New(3)
	defer shared.Close()
	for _, shards := range []int{2, 7} {
		for name, gc := range goldenCases(t) {
			gc := gc
			gc.cfg.Shards = shards
			gc.cfg.Pool = shared
			t.Run(fmt.Sprintf("%s/P=%d", name, shards), func(t *testing.T) {
				got := traceHash(t, gc)
				want := goldenTraces[name]
				if got != want {
					t.Errorf("pooled trace hash = %#x, want %#x — P=%d on the shared pool diverged from the serial engine", got, want, shards)
				}
			})
		}
	}
}

// TestGoldenTracesObserver pins that the Observer stack sees the exact
// record stream the legacy OnRound hook saw: for every golden
// configuration — serial and on a non-dividing shard count — the hash
// mixed through a MultiObserver reproduces the pinned golden hashes.
func TestGoldenTracesObserver(t *testing.T) {
	for _, shards := range []int{0, 3} {
		for name, gc := range goldenCases(t) {
			gc := gc
			gc.cfg.Shards = shards
			t.Run(fmt.Sprintf("%s/shards=%d", name, shards), func(t *testing.T) {
				got := observerTraceHash(t, gc)
				want := goldenTraces[name]
				if got != want {
					t.Errorf("observer trace hash = %#x, want %#x — the Observer path diverged from the OnRound path", got, want)
				}
			})
		}
	}
}

// TestGoldenTracesStable re-runs one config twice in-process to separate
// "golden mismatch because semantics changed" from "run-to-run
// nondeterminism" (e.g. map-iteration order leaking into the trace).
func TestGoldenTracesStable(t *testing.T) {
	cfg := goldenCases(t)["max-delay"]
	a := traceHash(t, cfg)
	cfg = goldenCases(t)["max-delay"]
	b := traceHash(t, cfg)
	if a != b {
		t.Fatalf("same config hashed %#x then %#x — nondeterminism in the engine", a, b)
	}
}

// TestGoldenFinalTipsAgree pins a qualitative invariant alongside the
// hashes: under the passive adversary with minimal delays, honest views
// converge to a single tip wherever a Δ-quiet period ends the run (they
// can differ by at most in-flight blocks otherwise).
func TestGoldenFinalTipsAgree(t *testing.T) {
	cfg := goldenCases(t)["passive"].cfg
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[blockchain.BlockID]struct{}{}
	for _, tip := range res.FinalTips {
		distinct[tip] = struct{}{}
	}
	if len(distinct) > cfg.Params.Delta+1 {
		t.Errorf("%d distinct final tips under passive adversary — views failed to track broadcasts", len(distinct))
	}
}
